//! The BlindFL binary wire format — byte-for-byte per
//! `docs/WIRE_PROTOCOL.md` at the repository root.
//!
//! Every [`Msg`] travels as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       2     magic   0x42 0x46  ("BF")
//! 2       1     version 0x06
//! 3       1     kind    (see the KIND_* constants)
//! 4       4     payload length, u32 little-endian
//! 8       n     payload (per-kind encoding)
//! ```
//!
//! All multi-byte integers are little-endian; `f64`s are IEEE-754 bits,
//! little-endian. This module is pure bytes-in/bytes-out — the I/O
//! lives in [`crate::transport`] — so the codec can be golden-tested
//! and fuzzed without sockets.

use bf_paillier::{export_ctmat, export_public, import_ctmat, import_public};
use bf_tensor::Dense;

use crate::transport::Msg;

/// Frame magic: ASCII `"BF"`.
pub const MAGIC: [u8; 2] = *b"BF";
/// Current protocol version. Decoders reject every other value.
/// History: v1 = kinds 1–6; v2 added kind 7 (`Hello`, multi-party
/// link identification); v3 added `Ct` body tag 2 (packed ciphertext
/// tensors); v4 added kind 8 (`Resume`, reconnect replay cursor);
/// v5 added kinds 9–10 (`GbSplit` / `GbBits`, federated tree split
/// bookkeeping and routing bitmaps); v6 added kinds 11–12
/// (`PsiOffer` / `PsiDigests`, the sample-alignment phase) — a new
/// kind or body tag is a version bump by rule.
pub const VERSION: u8 = 6;
/// Fixed frame-header length in bytes (magic + version + kind + length).
pub const HEADER_LEN: usize = 8;
/// Upper bound on a payload a decoder will accept (1 GiB). A malicious
/// or corrupted length field must not drive an allocation.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Frame kind byte for [`Msg::Ct`].
pub const KIND_CT: u8 = 1;
/// Frame kind byte for [`Msg::Mat`].
pub const KIND_MAT: u8 = 2;
/// Frame kind byte for [`Msg::Key`].
pub const KIND_KEY: u8 = 3;
/// Frame kind byte for [`Msg::Support`].
pub const KIND_SUPPORT: u8 = 4;
/// Frame kind byte for [`Msg::Scalar`].
pub const KIND_SCALAR: u8 = 5;
/// Frame kind byte for [`Msg::U64`].
pub const KIND_U64: u8 = 6;
/// Frame kind byte for [`Msg::Hello`].
pub const KIND_HELLO: u8 = 7;
/// Frame kind byte for [`Msg::Resume`].
pub const KIND_RESUME: u8 = 8;
/// Frame kind byte for [`Msg::GbSplit`].
pub const KIND_GB_SPLIT: u8 = 9;
/// Frame kind byte for [`Msg::GbBits`].
pub const KIND_GB_BITS: u8 = 10;
/// Frame kind byte for [`Msg::PsiOffer`].
pub const KIND_PSI_OFFER: u8 = 11;
/// Frame kind byte for [`Msg::PsiDigests`].
pub const KIND_PSI_DIGESTS: u8 = 12;

/// A frame- or payload-level decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known [`Msg`] variant.
    UnknownKind(u8),
    /// The length field exceeds [`MAX_PAYLOAD`].
    OversizedPayload(u32),
    /// The buffer ended before the encoding said it would.
    Truncated,
    /// A structurally invalid payload (bad lengths, bad key string, …).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::OversizedPayload(n) => write!(f, "payload length {n} exceeds limit"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The kind byte a message is framed with.
pub fn kind_byte(msg: &Msg) -> u8 {
    match msg {
        Msg::Ct(_) => KIND_CT,
        Msg::Mat(_) => KIND_MAT,
        Msg::Key(_) => KIND_KEY,
        Msg::Support(_) => KIND_SUPPORT,
        Msg::Scalar(_) => KIND_SCALAR,
        Msg::U64(_) => KIND_U64,
        Msg::Hello { .. } => KIND_HELLO,
        Msg::Resume { .. } => KIND_RESUME,
        Msg::GbSplit { .. } => KIND_GB_SPLIT,
        Msg::GbBits { .. } => KIND_GB_BITS,
        Msg::PsiOffer { .. } => KIND_PSI_OFFER,
        Msg::PsiDigests { .. } => KIND_PSI_DIGESTS,
    }
}

/// Bytes needed for an `nbits`-long bit vector (LSB-first packing).
pub fn bit_bytes(nbits: u64) -> usize {
    (nbits as usize).div_ceil(8)
}

/// Pack booleans LSB-first: bit `i` lands in `out[i / 8]` at position
/// `i % 8`. The canonical encoding [`Msg::GbBits`] carries.
pub fn pack_bits(bools: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bools.len().div_ceil(8)];
    for (i, &b) in bools.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Read bit `i` of an LSB-first packed bit vector.
pub fn bit_at(bits: &[u8], i: usize) -> bool {
    (bits[i / 8] >> (i % 8)) & 1 == 1
}

/// Encode the per-kind payload (frame header excluded).
pub fn encode_payload(msg: &Msg) -> Vec<u8> {
    match msg {
        Msg::Ct(ct) => export_ctmat(ct),
        Msg::Mat(m) => {
            let mut out = Vec::with_capacity(16 + 8 * m.rows() * m.cols());
            out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
            for v in m.data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Msg::Key(pk) => export_public(pk).into_bytes(),
        Msg::Support(s) => {
            let mut out = Vec::with_capacity(8 + 4 * s.len());
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            for v in s {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Msg::Scalar(v) => v.to_le_bytes().to_vec(),
        Msg::U64(v) => v.to_le_bytes().to_vec(),
        Msg::Hello { index, total } => {
            let mut out = Vec::with_capacity(8);
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&total.to_le_bytes());
            out
        }
        Msg::Resume { recv_seq } => recv_seq.to_le_bytes().to_vec(),
        Msg::GbSplit { feature, bucket } => {
            let mut out = Vec::with_capacity(8);
            out.extend_from_slice(&feature.to_le_bytes());
            out.extend_from_slice(&bucket.to_le_bytes());
            out
        }
        Msg::GbBits {
            rows,
            records,
            bits,
        } => {
            debug_assert_eq!(
                bits.len(),
                bit_bytes(rows.checked_mul(*records).expect("bit count overflow")),
                "GbBits bit buffer is not canonical"
            );
            let mut out = Vec::with_capacity(16 + bits.len());
            out.extend_from_slice(&rows.to_le_bytes());
            out.extend_from_slice(&records.to_le_bytes());
            out.extend_from_slice(bits);
            out
        }
        Msg::PsiOffer { salt, count } => {
            let mut out = Vec::with_capacity(16);
            out.extend_from_slice(&salt.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out
        }
        Msg::PsiDigests { digests } => {
            debug_assert!(
                digests.windows(2).all(|w| w[0] < w[1]),
                "PsiDigests must be a strictly ascending set"
            );
            let mut out = Vec::with_capacity(8 + 8 * digests.len());
            out.extend_from_slice(&(digests.len() as u64).to_le_bytes());
            for d in digests {
                out.extend_from_slice(&d.to_le_bytes());
            }
            out
        }
    }
}

/// Build the 8-byte frame header for a message whose payload has
/// already been encoded. The stream transport writes header and
/// payload separately so multi-megabyte `Ct` payloads are not copied
/// into a second contiguous buffer.
pub fn frame_header(msg: &Msg, payload: &[u8]) -> [u8; HEADER_LEN] {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "message payload exceeds the {MAX_PAYLOAD}-byte frame limit"
    );
    let len = (payload.len() as u32).to_le_bytes();
    [
        MAGIC[0],
        MAGIC[1],
        VERSION,
        kind_byte(msg),
        len[0],
        len[1],
        len[2],
        len[3],
    ]
}

/// Encode a complete frame (header + payload) into one buffer.
pub fn encode_frame(msg: &Msg) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&frame_header(msg, &payload));
    out.extend_from_slice(&payload);
    out
}

/// Validate a frame header, returning `(kind, payload_len)`.
pub fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), WireError> {
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    if header[2] != VERSION {
        return Err(WireError::UnsupportedVersion(header[2]));
    }
    let kind = header[3];
    if !(KIND_CT..=KIND_PSI_DIGESTS).contains(&kind) {
        return Err(WireError::UnknownKind(kind));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(WireError::OversizedPayload(len));
    }
    Ok((kind, len))
}

/// Decode a per-kind payload into a [`Msg`].
pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<Msg, WireError> {
    let exact = |want: usize| -> Result<&[u8], WireError> {
        if payload.len() == want {
            Ok(payload)
        } else {
            Err(WireError::Truncated)
        }
    };
    match kind {
        KIND_CT => import_ctmat(payload)
            .map(Msg::Ct)
            .map_err(WireError::Malformed),
        KIND_MAT => {
            if payload.len() < 16 {
                return Err(WireError::Truncated);
            }
            let rows = usize::try_from(u64::from_le_bytes(payload[0..8].try_into().unwrap()))
                .map_err(|_| WireError::Malformed("rows overflow".into()))?;
            let cols = usize::try_from(u64::from_le_bytes(payload[8..16].try_into().unwrap()))
                .map_err(|_| WireError::Malformed("cols overflow".into()))?;
            let n = rows
                .checked_mul(cols)
                .ok_or_else(|| WireError::Malformed("rows*cols overflow".into()))?;
            if n.checked_mul(8) != Some(payload.len() - 16) {
                return Err(WireError::Truncated);
            }
            let data: Vec<f64> = payload[16..]
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Msg::Mat(Dense::from_vec(rows, cols, data)))
        }
        KIND_KEY => {
            let s = std::str::from_utf8(payload)
                .map_err(|_| WireError::Malformed("key is not utf-8".into()))?;
            import_public(s).map(Msg::Key).map_err(WireError::Malformed)
        }
        KIND_SUPPORT => {
            if payload.len() < 8 {
                return Err(WireError::Truncated);
            }
            let n = usize::try_from(u64::from_le_bytes(payload[0..8].try_into().unwrap()))
                .map_err(|_| WireError::Malformed("support length overflow".into()))?;
            if n.checked_mul(4) != Some(payload.len() - 8) {
                return Err(WireError::Truncated);
            }
            let s: Vec<u32> = payload[8..]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Msg::Support(s))
        }
        KIND_SCALAR => Ok(Msg::Scalar(f64::from_le_bytes(
            exact(8)?.try_into().unwrap(),
        ))),
        KIND_U64 => Ok(Msg::U64(u64::from_le_bytes(exact(8)?.try_into().unwrap()))),
        KIND_HELLO => {
            let p = exact(8)?;
            Ok(Msg::Hello {
                index: u32::from_le_bytes(p[0..4].try_into().unwrap()),
                total: u32::from_le_bytes(p[4..8].try_into().unwrap()),
            })
        }
        KIND_RESUME => Ok(Msg::Resume {
            recv_seq: u64::from_le_bytes(exact(8)?.try_into().unwrap()),
        }),
        KIND_GB_SPLIT => {
            let p = exact(8)?;
            Ok(Msg::GbSplit {
                feature: u32::from_le_bytes(p[0..4].try_into().unwrap()),
                bucket: u32::from_le_bytes(p[4..8].try_into().unwrap()),
            })
        }
        KIND_GB_BITS => {
            if payload.len() < 16 {
                return Err(WireError::Truncated);
            }
            let rows = u64::from_le_bytes(payload[0..8].try_into().unwrap());
            let records = u64::from_le_bytes(payload[8..16].try_into().unwrap());
            let nbits = rows
                .checked_mul(records)
                .filter(|&n| usize::try_from(n).is_ok())
                .ok_or_else(|| WireError::Malformed("bit count overflow".into()))?;
            if payload.len() - 16 != bit_bytes(nbits) {
                return Err(WireError::Truncated);
            }
            let bits = payload[16..].to_vec();
            // Canonical encoding: padding bits in the last byte are 0.
            let pad = (nbits % 8) as u32;
            if pad != 0 && bits.last().map(|&b| b >> pad != 0).unwrap_or(false) {
                return Err(WireError::Malformed("nonzero padding bits".into()));
            }
            Ok(Msg::GbBits {
                rows,
                records,
                bits,
            })
        }
        KIND_PSI_OFFER => {
            let p = exact(16)?;
            Ok(Msg::PsiOffer {
                salt: u64::from_le_bytes(p[0..8].try_into().unwrap()),
                count: u64::from_le_bytes(p[8..16].try_into().unwrap()),
            })
        }
        KIND_PSI_DIGESTS => {
            if payload.len() < 8 {
                return Err(WireError::Truncated);
            }
            let n = usize::try_from(u64::from_le_bytes(payload[0..8].try_into().unwrap()))
                .map_err(|_| WireError::Malformed("digest count overflow".into()))?;
            if n.checked_mul(8) != Some(payload.len() - 8) {
                return Err(WireError::Truncated);
            }
            let digests: Vec<u64> = payload[8..]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            // Canonical encoding: a digest *set*, strictly ascending.
            // This both pins a unique byte form (row order can never
            // leak through frame bytes) and rejects duplicates.
            if !digests.windows(2).all(|w| w[0] < w[1]) {
                return Err(WireError::Malformed(
                    "digests not strictly ascending".into(),
                ));
            }
            Ok(Msg::PsiDigests { digests })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Decode one frame from the front of `buf`; returns the message and
/// the number of bytes consumed. Convenience wrapper used by tests —
/// the stream transport reads the header and payload separately.
pub fn decode_frame(buf: &[u8]) -> Result<(Msg, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
    let (kind, len) = decode_header(&header)?;
    let end = HEADER_LEN + len as usize;
    if buf.len() < end {
        return Err(WireError::Truncated);
    }
    let msg = decode_payload(kind, &buf[HEADER_LEN..end])?;
    Ok((msg, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden-bytes contract: these frames are the documented wire
    /// format (`docs/WIRE_PROTOCOL.md`). Changing any byte here is a
    /// protocol break and requires a VERSION bump.
    #[test]
    fn golden_u64_frame() {
        let frame = encode_frame(&Msg::U64(0x0102030405060708));
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, // "BF"
                0x06, // version
                0x06, // kind U64
                0x08, 0x00, 0x00, 0x00, // payload len 8
                0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // u64 LE
            ]
        );
    }

    #[test]
    fn golden_hello_frame() {
        let frame = encode_frame(&Msg::Hello {
            index: 2,
            total: 0x0304,
        });
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, // "BF"
                0x06, // version
                0x07, // kind Hello
                0x08, 0x00, 0x00, 0x00, // payload len 8
                0x02, 0x00, 0x00, 0x00, // index 2, u32 LE
                0x04, 0x03, 0x00, 0x00, // total 0x0304, u32 LE
            ]
        );
    }

    #[test]
    fn golden_scalar_frame() {
        let frame = encode_frame(&Msg::Scalar(1.0));
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, 0x06, 0x05, 0x08, 0x00, 0x00, 0x00, // header
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f, // 1.0f64 LE
            ]
        );
    }

    #[test]
    fn golden_support_frame() {
        let frame = encode_frame(&Msg::Support(vec![1, 0x0A0B]));
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, 0x06, 0x04, 0x10, 0x00, 0x00, 0x00, // header, len 16
                0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count 2
                0x01, 0x00, 0x00, 0x00, // 1
                0x0B, 0x0A, 0x00, 0x00, // 0x0A0B
            ]
        );
    }

    #[test]
    fn golden_mat_frame() {
        let frame = encode_frame(&Msg::Mat(Dense::from_vec(1, 2, vec![0.0, -2.0])));
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, 0x06, 0x02, 0x20, 0x00, 0x00, 0x00, // header, len 32
                0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rows 1
                0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // cols 2
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 0.0
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xc0, // -2.0
            ]
        );
    }

    #[test]
    fn golden_plain_key_frame() {
        let frame = encode_frame(&Msg::Key(bf_paillier::PublicKey::Plain { frac_bits: 24 }));
        let mut want = vec![0x42, 0x46, 0x06, 0x03, 0x0B, 0x00, 0x00, 0x00];
        want.extend_from_slice(b"bfplain1:24");
        assert_eq!(frame, want);
    }

    #[test]
    fn golden_plain_ct_frame() {
        let (pk, _) = bf_paillier::keys::plain_keys(1);
        let obf = bf_paillier::Obfuscator::new(&pk, bf_paillier::ObfMode::Pool(2), 0);
        let ct = pk.encrypt(&Dense::from_vec(1, 1, vec![0.5]), &obf);
        let frame = encode_frame(&Msg::Ct(ct));
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, 0x06, 0x01, 0x1A, 0x00, 0x00, 0x00, // header, len 26
                0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rows 1
                0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // cols 1
                0x01, // scale 1
                0x00, // body: plain
                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0, 0x3f, // 0.5
            ]
        );
    }

    #[test]
    fn golden_resume_frame() {
        let frame = encode_frame(&Msg::Resume {
            recv_seq: 0x0102030405060708,
        });
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, // "BF"
                0x06, // version
                0x08, // kind Resume
                0x08, 0x00, 0x00, 0x00, // payload len 8
                0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // recv_seq LE
            ]
        );
    }

    #[test]
    fn golden_gb_split_frame() {
        let frame = encode_frame(&Msg::GbSplit {
            feature: 3,
            bucket: 0x0102,
        });
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, // "BF"
                0x06, // version
                0x09, // kind GbSplit
                0x08, 0x00, 0x00, 0x00, // payload len 8
                0x03, 0x00, 0x00, 0x00, // feature 3, u32 LE
                0x02, 0x01, 0x00, 0x00, // bucket 0x0102, u32 LE
            ]
        );
    }

    #[test]
    fn golden_gb_bits_frame() {
        // 3 rows × 3 records = 9 bits: rows 0 and 2 of record 0,
        // row 1 of record 1, row 0 of record 2 set.
        let bools = [
            true, false, true, // record 0
            false, true, false, // record 1
            true, false, false, // record 2
        ];
        let frame = encode_frame(&Msg::GbBits {
            rows: 3,
            records: 3,
            bits: pack_bits(&bools),
        });
        assert_eq!(
            frame,
            vec![
                0x42,
                0x46, // "BF"
                0x06, // version
                0x0A, // kind GbBits
                0x12,
                0x00,
                0x00,
                0x00, // payload len 18
                0x03,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00, // rows 3
                0x03,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,        // records 3
                0b0101_0101, // bits 0..8 LSB-first
                0b0000_0000, // bit 8 (false), zero padding
            ]
        );
    }

    #[test]
    fn golden_psi_offer_frame() {
        let frame = encode_frame(&Msg::PsiOffer {
            salt: 0x0102030405060708,
            count: 3,
        });
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, // "BF"
                0x06, // version
                0x0B, // kind PsiOffer
                0x10, 0x00, 0x00, 0x00, // payload len 16
                0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // salt LE
                0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count 3
            ]
        );
    }

    #[test]
    fn golden_psi_digests_frame() {
        let frame = encode_frame(&Msg::PsiDigests {
            digests: vec![1, 0x0A0B],
        });
        assert_eq!(
            frame,
            vec![
                0x42, 0x46, // "BF"
                0x06, // version
                0x0C, // kind PsiDigests
                0x18, 0x00, 0x00, 0x00, // payload len 24
                0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // count 2
                0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1
                0x0B, 0x0A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 0x0A0B
            ]
        );
    }

    #[test]
    fn psi_digests_rejects_noncanonical() {
        let enc = |digests: &[u64]| -> Vec<u8> {
            let mut p = (digests.len() as u64).to_le_bytes().to_vec();
            for d in digests {
                p.extend_from_slice(&d.to_le_bytes());
            }
            p
        };
        // Descending order is not the canonical set encoding.
        assert!(matches!(
            decode_payload(KIND_PSI_DIGESTS, &enc(&[5, 2])),
            Err(WireError::Malformed(_))
        ));
        // A duplicate digest means the sender's ID column was not a set.
        assert!(matches!(
            decode_payload(KIND_PSI_DIGESTS, &enc(&[2, 2])),
            Err(WireError::Malformed(_))
        ));
        // Count claiming 4 digests but carrying 1.
        let mut p = 4u64.to_le_bytes().to_vec();
        p.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            decode_payload(KIND_PSI_DIGESTS, &p),
            Err(WireError::Truncated)
        ));
        // Count overflow must not drive an allocation.
        let p = u64::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            decode_payload(KIND_PSI_DIGESTS, &p),
            Err(WireError::Truncated) | Err(WireError::Malformed(_))
        ));
        // The empty set is canonical (disjoint parties are legal).
        let Msg::PsiDigests { digests } = decode_payload(KIND_PSI_DIGESTS, &enc(&[])).unwrap()
        else {
            panic!("kind changed");
        };
        assert!(digests.is_empty());
    }

    #[test]
    fn gb_bits_rejects_noncanonical() {
        // Wrong byte count for the claimed bit count.
        let mut p = Vec::new();
        p.extend_from_slice(&3u64.to_le_bytes());
        p.extend_from_slice(&3u64.to_le_bytes());
        p.extend_from_slice(&[0u8; 3]); // 9 bits need exactly 2 bytes
        assert!(matches!(
            decode_payload(KIND_GB_BITS, &p),
            Err(WireError::Truncated)
        ));
        // Nonzero padding bits.
        let mut p = Vec::new();
        p.extend_from_slice(&3u64.to_le_bytes());
        p.extend_from_slice(&3u64.to_le_bytes());
        p.extend_from_slice(&[0x00, 0x02]); // bit 9 set, beyond 9 bits
        assert!(matches!(
            decode_payload(KIND_GB_BITS, &p),
            Err(WireError::Malformed(_))
        ));
        // rows·records overflow must not drive an allocation.
        let mut p = Vec::new();
        p.extend_from_slice(&u64::MAX.to_le_bytes());
        p.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_payload(KIND_GB_BITS, &p),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn bit_packing_roundtrip() {
        let bools: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let bits = pack_bits(&bools);
        assert_eq!(bits.len(), bit_bytes(19));
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(bit_at(&bits, i), b, "bit {i}");
        }
    }

    #[test]
    fn header_rejections() {
        let ok = encode_frame(&Msg::U64(7));
        let hdr = |f: &[u8]| -> [u8; HEADER_LEN] { f[..HEADER_LEN].try_into().unwrap() };
        assert!(decode_header(&hdr(&ok)).is_ok());
        let mut bad = ok.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_header(&hdr(&bad)),
            Err(WireError::BadMagic(_))
        ));
        let mut bad = ok.clone();
        bad[2] = 9;
        assert!(matches!(
            decode_header(&hdr(&bad)),
            Err(WireError::UnsupportedVersion(9))
        ));
        let mut bad = ok.clone();
        bad[3] = 0;
        assert!(matches!(
            decode_header(&hdr(&bad)),
            Err(WireError::UnknownKind(0))
        ));
        let mut bad = ok.clone();
        bad[3] = KIND_PSI_DIGESTS + 1;
        assert!(matches!(
            decode_header(&hdr(&bad)),
            Err(WireError::UnknownKind(_))
        ));
        let mut bad = ok;
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_header(&hdr(&bad)),
            Err(WireError::OversizedPayload(_))
        ));
    }

    #[test]
    fn truncated_payloads_error() {
        let truncated =
            |kind: u8, p: &[u8]| matches!(decode_payload(kind, p), Err(WireError::Truncated));
        assert!(truncated(KIND_SCALAR, &[0; 7]));
        assert!(truncated(KIND_U64, &[0; 9]));
        assert!(truncated(KIND_HELLO, &[0; 7]));
        assert!(truncated(KIND_HELLO, &[0; 9]));
        assert!(truncated(KIND_RESUME, &[0; 7]));
        assert!(truncated(KIND_MAT, &[0; 15]));
        assert!(truncated(KIND_SUPPORT, &[0; 7]));
        assert!(truncated(KIND_GB_SPLIT, &[0; 7]));
        assert!(truncated(KIND_GB_SPLIT, &[0; 9]));
        assert!(truncated(KIND_GB_BITS, &[0; 15]));
        assert!(truncated(KIND_PSI_OFFER, &[0; 15]));
        assert!(truncated(KIND_PSI_OFFER, &[0; 17]));
        assert!(truncated(KIND_PSI_DIGESTS, &[0; 7]));
        // Support claiming 4 entries but carrying 1.
        let mut p = 4u64.to_le_bytes().to_vec();
        p.extend_from_slice(&[0; 4]);
        assert!(truncated(KIND_SUPPORT, &p));
    }

    #[test]
    fn frame_roundtrip_every_kind() {
        let msgs = vec![
            Msg::U64(u64::MAX),
            Msg::Scalar(-3.25),
            Msg::Support(vec![]),
            Msg::Support(vec![0, 1, u32::MAX]),
            Msg::Mat(Dense::zeros(0, 5)),
            Msg::Mat(Dense::from_vec(2, 2, vec![1.0, -1.0, 0.5, 1e300])),
            Msg::Key(bf_paillier::PublicKey::Plain { frac_bits: 7 }),
            Msg::Hello { index: 0, total: 1 },
            Msg::Hello {
                index: u32::MAX,
                total: u32::MAX,
            },
            Msg::Resume { recv_seq: 0 },
            Msg::Resume { recv_seq: u64::MAX },
            Msg::GbSplit {
                feature: 0,
                bucket: 0,
            },
            Msg::GbSplit {
                feature: u32::MAX,
                bucket: u32::MAX,
            },
            Msg::GbBits {
                rows: 0,
                records: 0,
                bits: vec![],
            },
            Msg::GbBits {
                rows: 5,
                records: 3,
                bits: pack_bits(&[true; 15]),
            },
            Msg::PsiOffer { salt: 0, count: 0 },
            Msg::PsiOffer {
                salt: u64::MAX,
                count: u64::MAX,
            },
            Msg::PsiDigests { digests: vec![] },
            Msg::PsiDigests {
                digests: vec![0, 7, u64::MAX],
            },
        ];
        for msg in msgs {
            let frame = encode_frame(&msg);
            let (got, used) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            match (&msg, &got) {
                (Msg::U64(a), Msg::U64(b)) => assert_eq!(a, b),
                (Msg::Scalar(a), Msg::Scalar(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Msg::Support(a), Msg::Support(b)) => assert_eq!(a, b),
                (Msg::Mat(a), Msg::Mat(b)) => assert_eq!(a, b),
                (Msg::Key(a), Msg::Key(b)) => {
                    assert_eq!(bf_paillier::export_public(a), bf_paillier::export_public(b))
                }
                (Msg::Hello { index: a, total: b }, Msg::Hello { index: c, total: d }) => {
                    assert_eq!((a, b), (c, d))
                }
                (Msg::Resume { recv_seq: a }, Msg::Resume { recv_seq: b }) => assert_eq!(a, b),
                (
                    Msg::GbSplit {
                        feature: a,
                        bucket: b,
                    },
                    Msg::GbSplit {
                        feature: c,
                        bucket: d,
                    },
                ) => assert_eq!((a, b), (c, d)),
                (
                    Msg::GbBits {
                        rows: r1,
                        records: c1,
                        bits: b1,
                    },
                    Msg::GbBits {
                        rows: r2,
                        records: c2,
                        bits: b2,
                    },
                ) => assert_eq!((r1, c1, b1), (r2, c2, b2)),
                (
                    Msg::PsiOffer {
                        salt: s1,
                        count: n1,
                    },
                    Msg::PsiOffer {
                        salt: s2,
                        count: n2,
                    },
                ) => assert_eq!((s1, n1), (s2, n2)),
                (Msg::PsiDigests { digests: a }, Msg::PsiDigests { digests: b }) => {
                    assert_eq!(a, b)
                }
                other => panic!("kind changed in roundtrip: {other:?}"),
            }
        }
    }
}
