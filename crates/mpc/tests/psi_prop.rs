//! Property tests for the PSI core against a `HashSet` oracle: over
//! random ID universes — including the empty, disjoint and
//! full-overlap corners — the salted-digest protocol must select
//! exactly the oracle intersection, in deterministic ascending-ID
//! order, invariantly under any permutation of either party's rows.

use std::collections::HashSet;

use bf_mpc::psi::{psi_digest, psi_guest, psi_host, salted_digests, select_common};
use bf_mpc::transport::channel_pair;
use bf_mpc::PsiSelection;
use proptest::prelude::*;

/// Distinct IDs drawn from a small universe (so overlap is common),
/// in ascending order — tests that need permuted rows apply
/// [`permute`] with a seed drawn as a separate strategy argument.
fn id_column(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..60, 0..=max_len).prop_map(|raw| {
        let mut v = raw;
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// Cheap deterministic Fisher–Yates driven by an LCG.
fn permute(mut v: Vec<u64>, mut s: u64) -> Vec<u64> {
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.swap(i, (s >> 33) as usize % (i + 1));
    }
    v
}

/// Run the real two-party protocol over an in-process pair.
fn run_psi(salt: u64, guest_ids: Vec<u64>, host_ids: Vec<u64>) -> (PsiSelection, PsiSelection) {
    let (a, b) = channel_pair();
    let guest = std::thread::spawn(move || psi_guest(&a, &guest_ids).unwrap().1);
    let host_sel = psi_host(&b, salt, &host_ids).unwrap();
    (guest.join().unwrap(), host_sel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn psi_matches_hashset_oracle(
        guest in id_column(40),
        host in id_column(40),
        salt in any::<u64>(),
        gs in any::<u64>(),
        hs in any::<u64>(),
    ) {
        let guest = permute(guest, gs);
        let host = permute(host, hs);
        let oracle: HashSet<u64> = guest
            .iter()
            .copied()
            .collect::<HashSet<u64>>()
            .intersection(&host.iter().copied().collect())
            .copied()
            .collect();
        let mut want: Vec<u64> = oracle.into_iter().collect();
        want.sort_unstable();

        let (gsel, hsel) = run_psi(salt, guest.clone(), host.clone());
        // Both parties agree with the oracle — and with each other.
        prop_assert_eq!(&gsel.ids, &want);
        prop_assert_eq!(&hsel.ids, &want);
        // The row maps point back at the right local rows.
        for (i, &row) in gsel.rows.iter().enumerate() {
            prop_assert_eq!(guest[row], gsel.ids[i]);
        }
        for (i, &row) in hsel.rows.iter().enumerate() {
            prop_assert_eq!(host[row], hsel.ids[i]);
        }
    }

    #[test]
    fn intersections_are_permutation_invariant(
        guest in id_column(30),
        host in id_column(30),
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        // Re-permute both columns and re-run the protocol: the shared
        // ID list must not move. (The guest's *frames* cannot move
        // either — the wire form is a sorted set — so this pins the
        // whole phase, bytes included, as row-order independent.)
        let (g1, h1) = run_psi(salt, guest.clone(), host.clone());
        let (g2, h2) = run_psi(salt, permute(guest, seed), permute(host, !seed));
        prop_assert_eq!(g1.ids, g2.ids);
        prop_assert_eq!(h1.ids, h2.ids);
    }

    #[test]
    fn select_common_is_deterministic_and_sorted(
        ids in id_column(30),
        peer in id_column(30),
        salt in any::<u64>(),
    ) {
        let peer_digests = salted_digests(salt, &peer).unwrap();
        let a = select_common(salt, &ids, &peer_digests).unwrap();
        let b = select_common(salt, &ids, &peer_digests).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.ids.windows(2).all(|w| w[0] < w[1]), "ascending, no dups");
        prop_assert_eq!(a.ids.len(), a.rows.len());
    }

    #[test]
    fn digests_never_collide_over_the_test_universe(salt in any::<u64>()) {
        // Sanity floor under the collision-refusal contract: the
        // SplitMix64-based digest is injective over small universes.
        let ids: Vec<u64> = (0..512).collect();
        let digests: HashSet<u64> = ids.iter().map(|&id| psi_digest(salt, id)).collect();
        prop_assert_eq!(digests.len(), ids.len());
    }

    #[test]
    fn duplicate_ids_are_rejected(ids in id_column(20), dup_at in any::<usize>()) {
        prop_assume!(!ids.is_empty());
        let mut bad = ids.clone();
        bad.push(ids[dup_at % ids.len()]);
        prop_assert!(salted_digests(1, &bad).is_err());
    }
}

#[test]
fn degenerate_shapes() {
    // Empty vs empty, empty vs full, full overlap.
    let (g, h) = run_psi(5, vec![], vec![]);
    assert!(g.ids.is_empty() && h.ids.is_empty());
    let (g, h) = run_psi(5, vec![], vec![1, 2, 3]);
    assert!(g.ids.is_empty() && h.ids.is_empty());
    let (g, h) = run_psi(5, vec![3, 1, 2], vec![1, 2, 3]);
    assert_eq!(g.ids, vec![1, 2, 3]);
    assert_eq!(h.ids, vec![1, 2, 3]);
    assert_eq!(g.rows, vec![1, 2, 0]);
    assert_eq!(h.rows, vec![0, 1, 2]);
}
