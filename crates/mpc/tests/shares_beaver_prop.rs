//! Property tests for the secret-sharing primitives (`shares.rs`) and
//! the Beaver matmul-triplet machinery (`beaver.rs`).
//!
//! Coverage the unit tests lack: arbitrary shapes **including the
//! degenerate ones** (0-row matrices, 0-column factors, 1×1), batched
//! triplet generation from one RNG stream (every triple in the batch
//! must be independently consistent), and the online Beaver
//! multiplication end-to-end over a channel pair.

use bf_mpc::beaver::{beaver_matmul, dealer_triple, he_gen_triple, TripleShare};
use bf_mpc::shares::{random_mask, reconstruct, share_dense, DEFAULT_MASK};
use bf_mpc::transport::channel_pair;
use bf_paillier::{keygen, ObfMode, Obfuscator, PublicKey, SecretKey};
use bf_tensor::Dense;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Deterministic matrix with mixed signs/magnitudes (including exact
/// zeros) for a given shape and salt.
fn dense(rows: usize, cols: usize, salt: u64) -> Dense {
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(salt);
            match x % 4 {
                0 => 0.0,
                1 => (x % 1000) as f64 / 8.0,
                2 => -((x % 777) as f64) * 1.5,
                _ => ((x % 13) as f64 - 6.0) * 1e3,
            }
        })
        .collect();
    Dense::from_vec(rows, cols, data)
}

/// Shapes biased toward the degenerate corners: 0-row/0-col matrices
/// and 1×1 appear with high probability alongside small general sizes.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        2 => Just(0usize),
        3 => Just(1usize),
        5 => 2usize..8,
    ]
}

/// One fixed small Paillier key pair per process: `he_gen_triple` is a
/// protocol property, not a keygen property, and keygen dominates its
/// cost.
fn test_keys() -> &'static ((PublicKey, SecretKey), (PublicKey, SecretKey)) {
    static KEYS: OnceLock<((PublicKey, SecretKey), (PublicKey, SecretKey))> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xbf_bf);
        let k1 = keygen(192, 20, &mut rng);
        let k2 = keygen(192, 20, &mut rng);
        (k1, k2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `share_dense` round-trips for any shape, any mask magnitude.
    #[test]
    fn share_reconstruct_roundtrip(
        rows in dim(),
        cols in dim(),
        salt in any::<u64>(),
        mask in prop_oneof![Just(0.0f64), Just(1.0), Just(DEFAULT_MASK), Just(1e6)],
        seed in any::<u64>(),
    ) {
        let v = dense(rows, cols, salt);
        let mut rng = StdRng::seed_from_u64(seed);
        let (s1, s2) = share_dense(&mut rng, &v, mask);
        prop_assert_eq!(s1.shape(), v.shape());
        prop_assert_eq!(s2.shape(), v.shape());
        let back = reconstruct(&s1, &s2);
        // Float cancellation error scales with the mask magnitude.
        let tol = 1e-9 * (1.0 + mask);
        prop_assert!(back.sub(&v).max_abs() <= tol,
            "reconstruction error {} for mask {}", back.sub(&v).max_abs(), mask);
    }

    /// The kept piece is value-independent: same RNG stream, different
    /// secrets, identical first piece (statistical hiding).
    #[test]
    fn kept_piece_is_value_independent(
        rows in dim(),
        cols in dim(),
        salt_a in any::<u64>(),
        salt_b in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let a = dense(rows, cols, salt_a);
        let b = dense(rows, cols, salt_b);
        let (p1a, _) = share_dense(&mut StdRng::seed_from_u64(seed), &a, 50.0);
        let (p1b, _) = share_dense(&mut StdRng::seed_from_u64(seed), &b, 50.0);
        prop_assert_eq!(p1a.data(), p1b.data());
    }

    /// `random_mask` respects its bound for every shape.
    #[test]
    fn random_mask_bounds(rows in dim(), cols in dim(), seed in any::<u64>()) {
        let m = random_mask(&mut StdRng::seed_from_u64(seed), rows, cols, 7.5);
        prop_assert_eq!(m.shape(), (rows, cols));
        prop_assert!(m.max_abs() <= 7.5);
    }

    /// A *batch* of dealer triples drawn from one RNG stream: every
    /// triple must be independently consistent (C = A·B after
    /// reconstruction) — catches state bleeding between generations.
    #[test]
    fn dealer_triples_batched_consistent(
        m in dim(), k in dim(), n in dim(),
        batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev_a: Option<Dense> = None;
        for _ in 0..batch {
            let (t1, t2) = dealer_triple(&mut rng, m, k, n, 25.0);
            let a = t1.a.add(&t2.a);
            let b = t1.b.add(&t2.b);
            let c = t1.c.add(&t2.c);
            prop_assert_eq!(a.shape(), (m, k));
            prop_assert_eq!(b.shape(), (k, n));
            prop_assert_eq!(c.shape(), (m, n));
            prop_assert!(c.sub(&a.matmul(&b)).max_abs() <= 1e-8,
                "triple inconsistent: err {}", c.sub(&a.matmul(&b)).max_abs());
            // Fresh randomness per triple (vacuous for empty shapes).
            if m * k > 0 {
                if let Some(pa) = &prev_a {
                    prop_assert!(pa.sub(&a).max_abs() > 0.0, "repeated A across batch");
                }
                prev_a = Some(a);
            }
        }
    }

    /// Online Beaver multiplication reconstructs X·Y for any shapes,
    /// including degenerate ones.
    #[test]
    fn beaver_matmul_reconstructs(
        m in dim(), k in dim(), n in dim(),
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = dense(m, k, salt).scale(1e-3);
        let y = dense(k, n, salt ^ 0xabcd).scale(1e-3);
        let (x1, x2) = share_dense(&mut rng, &x, 10.0);
        let (y1, y2) = share_dense(&mut rng, &y, 10.0);
        let (t1, t2) = dealer_triple(&mut rng, m, k, n, 10.0);
        let (ep1, ep2) = channel_pair();
        let h = std::thread::spawn(move || beaver_matmul(&ep1, true, &x1, &y1, &t1).unwrap());
        let z2 = beaver_matmul(&ep2, false, &x2, &y2, &t2).unwrap();
        let z1 = h.join().unwrap();
        let got = z1.add(&z2);
        prop_assert_eq!(got.shape(), (m, n));
        prop_assert!(got.sub(&x.matmul(&y)).max_abs() <= 1e-6,
            "beaver product err {}", got.sub(&x.matmul(&y)).max_abs());
    }
}

proptest! {
    // HE-assisted generation is ciphertext-heavy; keep the case count
    // low (PROPTEST_CASES caps further in CI).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// HE-assisted triplet generation is consistent for arbitrary
    /// shapes, including 0-row/0-col factors and 1×1.
    #[test]
    fn he_gen_triple_batched_consistent(
        m in dim(), k in dim(), n in dim(),
        seed in any::<u64>(),
        batch in 1usize..3,
    ) {
        let ((pk1, sk1), (pk2, sk2)) = test_keys();
        let obf1 = Obfuscator::new(pk1, ObfMode::Pool(4), seed);
        let obf2 = Obfuscator::new(pk2, ObfMode::Pool(4), seed ^ 1);
        let (ep1, ep2) = channel_pair();
        let pk1c = pk1.clone();
        let pk2c = pk2.clone();
        let sk1c = sk1.clone();
        let h = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            (0..batch)
                .map(|_| he_gen_triple(&ep1, &pk1c, &sk1c, &obf1, &pk2c, m, k, n, &mut rng).unwrap())
                .collect::<Vec<TripleShare>>()
        });
        let mut rng2 = StdRng::seed_from_u64(seed.wrapping_add(2));
        let t2s: Vec<TripleShare> = (0..batch)
            .map(|_| he_gen_triple(&ep2, pk2, sk2, &obf2, pk1, m, k, n, &mut rng2).unwrap())
            .collect();
        let t1s = h.join().unwrap();
        for (t1, t2) in t1s.iter().zip(&t2s) {
            let a = t1.a.add(&t2.a);
            let b = t1.b.add(&t2.b);
            let c = t1.c.add(&t2.c);
            prop_assert!(c.sub(&a.matmul(&b)).max_abs() <= 1e-3,
                "HE triple inconsistent: err {}", c.sub(&a.matmul(&b)).max_abs());
        }
    }
}

/// The estimator must track the actual share footprint for degenerate
/// shapes too (plain #[test]: exact arithmetic, no search needed).
#[test]
fn estimated_bytes_degenerate_shapes() {
    assert_eq!(TripleShare::estimated_bytes(0, 3, 4), 8 * 12);
    assert_eq!(TripleShare::estimated_bytes(1, 1, 1), 8 * 3);
    assert_eq!(TripleShare::estimated_bytes(0, 0, 0), 0);
}
