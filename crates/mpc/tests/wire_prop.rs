//! Property tests for the wire codec: every [`Msg`] variant must
//! survive encode→decode byte-exactly, including the degenerate shapes
//! a real deployment will eventually produce (empty matrices,
//! max-scale ciphertexts, zero-length supports).

use bf_mpc::wire::{decode_frame, encode_frame};
use bf_mpc::Msg;
use bf_paillier::{export_public, import_ctmat, CtMat, PublicKey};
use bf_tensor::Dense;
use proptest::prelude::*;

/// Build a [`CtMat`] through the documented byte layout (the only
/// public constructor for arbitrary bodies — which is itself part of
/// the codec under test).
fn ctmat_from_parts(rows: usize, cols: usize, scale: u8, body: &CtBody) -> CtMat {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(rows as u64).to_le_bytes());
    bytes.extend_from_slice(&(cols as u64).to_le_bytes());
    bytes.push(scale);
    match body {
        CtBody::Plain(vals) => {
            bytes.push(0);
            for v in vals {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        CtBody::Enc { k, limbs } => {
            bytes.push(1);
            bytes.extend_from_slice(&(*k as u64).to_le_bytes());
            for l in limbs {
                bytes.extend_from_slice(&l.to_le_bytes());
            }
        }
        CtBody::Packed {
            k,
            slot_bits,
            slots,
            seg,
            limbs,
        } => {
            bytes.push(2);
            bytes.extend_from_slice(&(*k as u64).to_le_bytes());
            bytes.extend_from_slice(&(*slot_bits as u64).to_le_bytes());
            bytes.extend_from_slice(&(*slots as u64).to_le_bytes());
            bytes.extend_from_slice(&(*seg as u64).to_le_bytes());
            for l in limbs {
                bytes.extend_from_slice(&l.to_le_bytes());
            }
        }
    }
    import_ctmat(&bytes).expect("constructed ctmat bytes are valid")
}

#[derive(Clone, Debug)]
enum CtBody {
    Plain(Vec<f64>),
    Enc {
        k: usize,
        limbs: Vec<u64>,
    },
    Packed {
        k: usize,
        slot_bits: u32,
        slots: usize,
        seg: usize,
        limbs: Vec<u64>,
    },
}

/// Deterministic finite matrix contents covering sign, magnitude
/// extremes and exact zero.
fn dense(r: usize, c: usize) -> Dense {
    let data: Vec<f64> = (0..r * c)
        .map(|i| match i % 5 {
            0 => 0.0,
            1 => -1.5e300,
            2 => 4.25,
            3 => f64::MIN_POSITIVE,
            _ => -(i as f64) * 1e-9,
        })
        .collect();
    Dense::from_vec(r, c, data)
}

/// Arbitrary ciphertext tensor: rows/cols include 0 (empty matrices),
/// scale includes `u8::MAX` ("max-scale" ciphertexts), both body kinds.
fn ct(r: usize, c: usize, scale: u8, plain: bool, k: usize) -> CtMat {
    let scale = if scale == 0 { u8::MAX } else { scale };
    let body = if plain {
        CtBody::Plain((0..r * c).map(|i| i as f64 * 0.5 - 1.0).collect())
    } else {
        CtBody::Enc {
            k,
            limbs: (0..r * c * k)
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect(),
        }
    };
    ctmat_from_parts(r, c, scale, &body)
}

fn roundtrip(msg: &Msg) -> Msg {
    let frame = encode_frame(msg);
    let (got, used) = decode_frame(&frame).expect("frame decodes");
    assert_eq!(used, frame.len(), "frame length fully consumed");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mat_roundtrips(r in 0usize..=5, c in 0usize..=5) {
        let m = dense(r, c);
        let Msg::Mat(got) = roundtrip(&Msg::Mat(m.clone())) else {
            panic!("kind changed");
        };
        prop_assert_eq!(got, m);
    }

    #[test]
    fn ct_roundtrips(
        r in 0usize..=3,
        c in 0usize..=3,
        scale in any::<u8>(),
        plain in any::<bool>(),
        k in 1usize..=4,
    ) {
        let ct = ct(r, c, scale, plain, k);
        let Msg::Ct(got) = roundtrip(&Msg::Ct(ct.clone())) else {
            panic!("kind changed");
        };
        prop_assert_eq!(got, ct);
    }

    #[test]
    fn packed_ct_roundtrips(
        r in 0usize..=3,
        segs in 1usize..=2,
        seg in 2usize..=4,
        scale in any::<u8>(),
        slot_bits in 40u32..=120,
        slots in 2usize..=4,
        k in 1usize..=4,
    ) {
        // Packed bodies (wire v3, body tag 2): cols = segs·seg keeps the
        // segment-divides-cols invariant; chunk count follows the
        // documented ceil(seg/slots) rule.
        let cols = segs * seg;
        let chunks = segs * seg.div_ceil(slots);
        let ct = ctmat_from_parts(r, cols, scale.max(1), &CtBody::Packed {
            k,
            slot_bits,
            slots,
            seg,
            limbs: (0..r * chunks * k)
                .map(|i| (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
                .collect(),
        });
        let Msg::Ct(got) = roundtrip(&Msg::Ct(ct.clone())) else {
            panic!("kind changed");
        };
        prop_assert_eq!(got, ct);
    }

    #[test]
    fn corrupted_packed_frames_never_panic(flip in 0usize..96, bit in 0u8..8) {
        let ct = ctmat_from_parts(2, 4, 1, &CtBody::Packed {
            k: 2,
            slot_bits: 80,
            slots: 3,
            seg: 4,
            limbs: (0..2 * 2 * 2).map(|i| i as u64 + 7).collect(),
        });
        let mut frame = encode_frame(&Msg::Ct(ct));
        let idx = flip % frame.len();
        frame[idx] ^= 1 << bit;
        let _ = decode_frame(&frame);
    }

    #[test]
    fn support_roundtrips(s in prop::collection::vec(any::<u32>(), 0..=16)) {
        let Msg::Support(got) = roundtrip(&Msg::Support(s.clone())) else {
            panic!("kind changed");
        };
        prop_assert_eq!(got, s);
    }

    #[test]
    fn scalar_roundtrips_bit_exact(bits in any::<u64>()) {
        // Bit-level identity must hold even for NaNs and infinities.
        let v = f64::from_bits(bits);
        let Msg::Scalar(got) = roundtrip(&Msg::Scalar(v)) else {
            panic!("kind changed");
        };
        prop_assert_eq!(got.to_bits(), bits);
    }

    #[test]
    fn u64_roundtrips(v in any::<u64>()) {
        let Msg::U64(got) = roundtrip(&Msg::U64(v)) else {
            panic!("kind changed");
        };
        prop_assert_eq!(got, v);
    }

    #[test]
    fn plain_key_roundtrips(frac_bits in 0u32..64) {
        let pk = PublicKey::Plain { frac_bits };
        let Msg::Key(got) = roundtrip(&Msg::Key(pk.clone())) else {
            panic!("kind changed");
        };
        prop_assert_eq!(export_public(&got), export_public(&pk));
    }

    #[test]
    fn hello_roundtrips(index in any::<u32>(), total in any::<u32>()) {
        // The multi-guest link-identification frame: every (index,
        // total) combination — including the degenerate 0-guest hello
        // and the max-scale u32::MAX payload — must survive the wire
        // byte-exactly (the host's fan-in sorts links by this value).
        let Msg::Hello { index: gi, total: gt } =
            roundtrip(&Msg::Hello { index, total }) else {
                panic!("kind changed");
            };
        prop_assert_eq!((gi, gt), (index, total));
    }

    #[test]
    fn gb_split_roundtrips(feature in any::<u32>(), bucket in any::<u32>()) {
        let Msg::GbSplit { feature: gf, bucket: gb } =
            roundtrip(&Msg::GbSplit { feature, bucket }) else {
                panic!("kind changed");
            };
        prop_assert_eq!((gf, gb), (feature, bucket));
    }

    #[test]
    fn gb_bits_roundtrips(rows in 0u64..=9, records in 0u64..=9, seed in any::<u64>()) {
        // Canonical bitmaps of every small shape — including the empty
        // 0×k and k×0 bitmaps — survive the wire byte-exactly.
        let n = (rows * records) as usize;
        let bools: Vec<bool> = (0..n)
            .map(|i| (seed.rotate_left(i as u32 % 64) >> (i % 64)) & 1 == 1)
            .collect();
        let bits = bf_mpc::wire::pack_bits(&bools);
        let msg = Msg::GbBits { rows, records, bits: bits.clone() };
        let Msg::GbBits { rows: gr, records: gc, bits: gbits } =
            roundtrip(&msg) else {
                panic!("kind changed");
            };
        prop_assert_eq!((gr, gc, gbits), (rows, records, bits));
    }

    #[test]
    fn corrupted_gb_bits_frames_never_panic(flip in 0usize..34, bit in 0u8..8) {
        let mut frame = encode_frame(&Msg::GbBits {
            rows: 4,
            records: 3,
            bits: bf_mpc::wire::pack_bits(&[true; 12]),
        });
        let idx = flip % frame.len();
        frame[idx] ^= 1 << bit;
        let _ = decode_frame(&frame);
    }

    #[test]
    fn psi_offer_roundtrips(salt in any::<u64>(), count in any::<u64>()) {
        let Msg::PsiOffer { salt: gs, count: gc } =
            roundtrip(&Msg::PsiOffer { salt, count }) else {
                panic!("kind changed");
            };
        prop_assert_eq!((gs, gc), (salt, count));
    }

    #[test]
    fn psi_digests_roundtrip(raw in prop::collection::vec(any::<u64>(), 0..=24)) {
        // Sort + dedup produces exactly the canonical wire form (a
        // strictly ascending digest set).
        let mut digests = raw;
        digests.sort_unstable();
        digests.dedup();
        let Msg::PsiDigests { digests: got } =
            roundtrip(&Msg::PsiDigests { digests: digests.clone() }) else {
                panic!("kind changed");
            };
        prop_assert_eq!(got, digests);
    }

    #[test]
    fn corrupted_psi_frames_never_panic(flip in 0usize..40, bit in 0u8..8) {
        let mut frame = encode_frame(&Msg::PsiDigests { digests: vec![3, 9, 11] });
        let idx = flip % frame.len();
        frame[idx] ^= 1 << bit;
        let _ = decode_frame(&frame);
    }

    #[test]
    fn corrupted_frames_never_panic(r in 1usize..=3, flip in 0usize..64, bit in 0u8..8) {
        // Decoding must reject (or re-interpret) arbitrary single-bit
        // corruption without panicking.
        let mut frame = encode_frame(&Msg::Mat(dense(r, 2)));
        let idx = flip % frame.len();
        frame[idx] ^= 1 << bit;
        let _ = decode_frame(&frame);
    }
}

#[test]
fn paillier_key_roundtrips_through_frames() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let (pk, _) = bf_paillier::keygen(128, 16, &mut rng);
    let Msg::Key(got) = roundtrip(&Msg::Key(pk.clone())) else {
        panic!("kind changed");
    };
    assert_eq!(export_public(&got), export_public(&pk));
}
