//! Fixed-point encoding of `f64` values into `Z_n`.
//!
//! `encode(v) = round(v · 2^{frac_bits·scale}) mod n`, with negatives
//! mapped to the upper half of the ring (`n - |m|`). Homomorphic
//! plain×cipher products therefore carry scale `2·frac_bits`;
//! [`decode`] divides the (sign-recovered) integer back out.

use bf_bigint::BigUint;

/// A signed fixed-point integer, used as a homomorphic scalar-mult
/// exponent: `value = (-1)^neg · mag / 2^frac_bits`.
#[derive(Clone, Debug)]
pub struct SignedInt {
    /// Magnitude of the scaled integer.
    pub mag: BigUint,
    /// Sign flag.
    pub neg: bool,
}

impl SignedInt {
    /// True if the magnitude is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }
}

/// Encode `v` at `scale` multiples of `frac_bits` into `Z_n`.
///
/// Panics (debug) if the scaled magnitude exceeds `n/2`, which would
/// alias positive and negative payloads.
pub fn encode(v: f64, frac_bits: u32, scale: u8, n: &BigUint) -> BigUint {
    let s = encode_exponent(v, frac_bits * scale as u32);
    if s.neg {
        if s.mag.is_zero() {
            BigUint::zero()
        } else {
            n.sub(&s.mag)
        }
    } else {
        s.mag
    }
}

/// Encode `v` as a signed scaled integer (for use as an exponent in
/// homomorphic scalar multiplication).
pub fn encode_exponent(v: f64, shift_bits: u32) -> SignedInt {
    assert!(v.is_finite(), "cannot encode non-finite value {v}");
    let scaled = v * (shift_bits as f64).exp2();
    debug_assert!(
        scaled.abs() < 1.7e38,
        "fixed-point overflow: |{v}| * 2^{shift_bits} exceeds 128 bits"
    );
    let neg = scaled < 0.0;
    let mag_f = scaled.abs().round();
    let mag = if mag_f < 1.8446744073709552e19 {
        BigUint::from_u64(mag_f as u64)
    } else {
        BigUint::from_u128(mag_f as u128)
    };
    SignedInt { mag, neg }
}

/// Decode a ring element back to `f64` at `scale` multiples of
/// `frac_bits`. Elements above `n/2` decode as negative.
pub fn decode(m: &BigUint, frac_bits: u32, scale: u8, n: &BigUint, half_n: &BigUint) -> f64 {
    let shift = (frac_bits * scale as u32) as f64;
    if m > half_n {
        -(n.sub(m).to_f64()) / shift.exp2()
    } else {
        m.to_f64() / shift.exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> BigUint {
        BigUint::one().shl(256).sub_u64(189) // prime-ish large modulus
    }

    #[test]
    fn roundtrip_positive_negative() {
        let n = n();
        let half = n.shr(1);
        let irr = std::f64::consts::PI;
        for v in [0.0, 1.0, -1.0, irr, -irr, 1e-6, -1e-6, 12345.678, -99999.5] {
            let enc = encode(v, 32, 1, &n);
            let dec = decode(&enc, 32, 1, &n, &half);
            assert!((dec - v).abs() < 1e-9, "v={v} dec={dec}");
        }
    }

    #[test]
    fn scale_two_roundtrip() {
        let n = n();
        let half = n.shr(1);
        let v = -17.25;
        let enc = encode(v, 32, 2, &n);
        let dec = decode(&enc, 32, 2, &n, &half);
        assert!((dec - v).abs() < 1e-12);
    }

    #[test]
    fn additive_homomorphism_of_encoding() {
        // encode(a) + encode(b) mod n decodes to a + b.
        let n = n();
        let half = n.shr(1);
        for (a, b) in [(1.5, 2.5), (-1.5, 0.75), (3.0, -5.0), (-2.0, -2.0)] {
            let ea = encode(a, 32, 1, &n);
            let eb = encode(b, 32, 1, &n);
            let sum = ea.mod_add(&eb, &n);
            let dec = decode(&sum, 32, 1, &n, &half);
            assert!((dec - (a + b)).abs() < 1e-8, "a={a} b={b} dec={dec}");
        }
    }

    #[test]
    fn multiplicative_scale_composition() {
        // encode(a,1) * encode(b,1) decodes at scale 2 to a*b.
        let n = n();
        let half = n.shr(1);
        for (a, b) in [(1.5, 2.0), (-3.25, 4.0), (-2.0, -8.5)] {
            let ea = encode(a, 32, 1, &n);
            let eb = encode(b, 32, 1, &n);
            let prod = ea.mod_mul(&eb, &n);
            let dec = decode(&prod, 32, 2, &n, &half);
            assert!((dec - a * b).abs() < 1e-6, "a={a} b={b} dec={dec}");
        }
    }

    #[test]
    fn exponent_encoding_signs() {
        let e = encode_exponent(-2.5, 4);
        assert!(e.neg);
        assert_eq!(e.mag.low_u64(), 40);
        let z = encode_exponent(0.0, 32);
        assert!(z.is_zero());
    }
}
