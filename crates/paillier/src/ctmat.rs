//! [`CtMat`] — the paper's *CryptoTensor*: a matrix of Paillier
//! ciphertexts with dense and sparse homomorphic kernels.
//!
//! Ciphertexts are stored flat in Montgomery form (`k` limbs each), so
//! homomorphic addition is one `mont_mul` and scalar multiplication is a
//! short-exponent `pow_mont`. Negative fixed-point scalars are handled
//! by accumulating positive and negative partial products separately and
//! resolving the negatives with one batched modular inversion per output
//! row (Montgomery's trick), instead of a full-width exponentiation per
//! entry.

use bf_bigint::{batch_mod_inv, BigUint};
use bf_tensor::{CatBlock, Dense, Features};
use bf_util::par_map;

use crate::codec;
use crate::keys::{PaillierPk, PublicKey, SecretKey};
use crate::obf::Obfuscator;
use crate::pack::{self, PackedCtMat, PaillierMode, SlotLayout};

/// A matrix of ciphertexts (or the Plain backend's `f64`s).
#[derive(Clone, Debug, PartialEq)]
pub struct CtMat {
    rows: usize,
    cols: usize,
    /// Fixed-point scale in multiples of `frac_bits` (1 = fresh
    /// encryption, 2 = plain×cipher product).
    scale: u8,
    body: Body,
}

#[derive(Clone, Debug, PartialEq)]
enum Body {
    /// Flat Montgomery-form limbs: entry `(i, j)` occupies
    /// `limbs[(i*cols + j)*k .. +k]`.
    Enc { k: usize, limbs: Vec<u64> },
    /// Slot-packed layout: one ciphertext per column chunk (see
    /// [`crate::pack`]).
    Packed(PackedCtMat),
    /// Plain backend.
    Plain(Vec<f64>),
}

/// Borrowed view of a [`CtMat`] body used by the byte codec in
/// [`crate::serial`]. Crate-internal: the wire layout is owned by
/// `serial`, the in-memory layout by this module.
pub(crate) enum BodyView<'a> {
    /// Montgomery-form limbs, `k` per ciphertext.
    Enc {
        /// Limbs per ciphertext.
        k: usize,
        /// Flat row-major limb buffer.
        limbs: &'a [u64],
    },
    /// Slot-packed ciphertexts.
    Packed {
        /// Limbs per ciphertext.
        k: usize,
        /// Slot geometry.
        layout: SlotLayout,
        /// Segment width in columns.
        seg: usize,
        /// Flat row-major chunk limbs.
        limbs: &'a [u64],
    },
    /// Plain-backend values.
    Plain(&'a [f64]),
}

impl CtMat {
    /// Borrow the body for serialization.
    pub(crate) fn body_view(&self) -> BodyView<'_> {
        match &self.body {
            Body::Enc { k, limbs } => BodyView::Enc { k: *k, limbs },
            Body::Packed(p) => BodyView::Packed {
                k: p.k,
                layout: p.layout,
                seg: p.seg,
                limbs: &p.limbs,
            },
            Body::Plain(v) => BodyView::Plain(v),
        }
    }

    /// Rebuild an encrypted matrix from deserialized parts. The caller
    /// (the codec) has already validated `limbs.len() == rows*cols*k`.
    pub(crate) fn from_enc_parts(
        rows: usize,
        cols: usize,
        scale: u8,
        k: usize,
        limbs: Vec<u64>,
    ) -> CtMat {
        debug_assert_eq!(limbs.len(), rows * cols * k);
        CtMat {
            rows,
            cols,
            scale,
            body: Body::Enc { k, limbs },
        }
    }

    /// Rebuild a packed matrix from deserialized parts. The codec has
    /// already validated the chunk geometry and limb count.
    pub(crate) fn from_packed_parts(
        rows: usize,
        cols: usize,
        scale: u8,
        k: usize,
        layout: SlotLayout,
        seg: usize,
        limbs: Vec<u64>,
    ) -> CtMat {
        CtMat {
            rows,
            cols,
            scale,
            body: Body::Packed(PackedCtMat {
                k,
                layout,
                seg,
                limbs,
            }),
        }
    }

    /// Rebuild a Plain-backend matrix from deserialized parts.
    pub(crate) fn from_plain_parts(rows: usize, cols: usize, scale: u8, vals: Vec<f64>) -> CtMat {
        debug_assert_eq!(vals.len(), rows * cols);
        CtMat {
            rows,
            cols,
            scale,
            body: Body::Plain(vals),
        }
    }
}

impl CtMat {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Fixed-point scale multiplier (1 or 2).
    pub fn scale(&self) -> u8 {
        self.scale
    }

    /// Serialized size in bytes (for transport accounting).
    pub fn wire_size(&self) -> usize {
        16 + match &self.body {
            Body::Enc { limbs, .. } => limbs.len() * 8,
            // Packed bodies carry a 4-field geometry header on the wire.
            Body::Packed(p) => 32 + p.limbs.len() * 8,
            Body::Plain(v) => v.len() * 8,
        }
    }

    /// True if this is a Plain-backend matrix.
    pub fn is_plain(&self) -> bool {
        matches!(self.body, Body::Plain(_))
    }

    /// True if this matrix uses the slot-packed ciphertext layout.
    pub fn is_packed(&self) -> bool {
        matches!(self.body, Body::Packed(_))
    }

    fn entry(&self, k: usize, i: usize, j: usize) -> &[u64] {
        let Body::Enc { limbs, .. } = &self.body else {
            unreachable!()
        };
        let off = (i * self.cols + j) * k;
        &limbs[off..off + k]
    }

    /// Transposed copy (pure index permutation — no homomorphic work).
    ///
    /// Panics on a packed matrix: slots run along the column axis, so a
    /// transpose would need to re-pack ciphertext contents. Paths that
    /// transpose their ciphertexts must stay in scalar layout.
    pub fn transpose(&self) -> CtMat {
        let body = match &self.body {
            Body::Packed(_) => panic!("transpose is unsupported for packed ciphertexts"),
            Body::Enc { k, limbs } => {
                let k = *k;
                let mut out = vec![0u64; limbs.len()];
                for i in 0..self.rows {
                    for j in 0..self.cols {
                        let src = (i * self.cols + j) * k;
                        let dst = (j * self.rows + i) * k;
                        out[dst..dst + k].copy_from_slice(&limbs[src..src + k]);
                    }
                }
                Body::Enc { k, limbs: out }
            }
            Body::Plain(v) => {
                let mut out = vec![0.0; v.len()];
                for i in 0..self.rows {
                    for j in 0..self.cols {
                        out[j * self.rows + i] = v[i * self.cols + j];
                    }
                }
                Body::Plain(out)
            }
        };
        CtMat {
            rows: self.cols,
            cols: self.rows,
            scale: self.scale,
            body,
        }
    }

    /// Gather a subset of rows.
    pub fn select_rows(&self, rows: &[usize]) -> CtMat {
        let body = match &self.body {
            Body::Packed(p) => {
                let stride = p.chunks_total(self.cols) * p.k;
                let mut out = Vec::with_capacity(rows.len() * stride);
                for &r in rows {
                    out.extend_from_slice(&p.limbs[r * stride..(r + 1) * stride]);
                }
                Body::Packed(PackedCtMat {
                    k: p.k,
                    layout: p.layout,
                    seg: p.seg,
                    limbs: out,
                })
            }
            Body::Enc { k, limbs } => {
                let stride = self.cols * k;
                let mut out = Vec::with_capacity(rows.len() * stride);
                for &r in rows {
                    out.extend_from_slice(&limbs[r * stride..(r + 1) * stride]);
                }
                Body::Enc { k: *k, limbs: out }
            }
            Body::Plain(v) => {
                let mut out = Vec::with_capacity(rows.len() * self.cols);
                for &r in rows {
                    out.extend_from_slice(&v[r * self.cols..(r + 1) * self.cols]);
                }
                Body::Plain(out)
            }
        };
        CtMat {
            rows: rows.len(),
            cols: self.cols,
            scale: self.scale,
            body,
        }
    }
}

/// Quantise to `frac_bits` fractional bits (what encryption would do),
/// so the Plain backend reproduces fixed-point rounding.
fn quantize(v: f64, frac_bits: u32) -> f64 {
    let s = (frac_bits as f64).exp2();
    (v * s).round() / s
}

impl PublicKey {
    /// Encrypt a dense matrix (scale 1).
    pub fn encrypt(&self, m: &Dense, obf: &Obfuscator) -> CtMat {
        match self {
            PublicKey::Paillier(pk) => {
                let k = pk.ct_limbs();
                let n = m.rows() * m.cols();
                let data = m.data();
                let per_entry: Vec<Vec<u64>> = par_map(n, |i| {
                    let enc = codec::encode(data[i], pk.frac_bits, 1, &pk.n);
                    pk.raw_encrypt(&enc, &obf.next_rn(pk))
                });
                CtMat {
                    rows: m.rows(),
                    cols: m.cols(),
                    scale: 1,
                    body: Body::Enc {
                        k,
                        limbs: flatten(per_entry, k),
                    },
                }
            }
            PublicKey::Plain { frac_bits } => CtMat {
                rows: m.rows(),
                cols: m.cols(),
                scale: 1,
                body: Body::Plain(m.data().iter().map(|&v| quantize(v, *frac_bits)).collect()),
            },
        }
    }

    /// Encrypt selecting the ciphertext layout: `Scalar` is
    /// [`PublicKey::encrypt`]; `Packed` packs along the column axis as a
    /// single segment (`seg = cols`), falling back to the scalar body
    /// when the key or shape cannot pack (see [`crate::pack`]).
    pub fn encrypt_mode(&self, m: &Dense, mode: PaillierMode, obf: &Obfuscator) -> CtMat {
        self.encrypt_mode_seg(m, m.cols(), mode, obf)
    }

    /// [`PublicKey::encrypt_mode`] with an explicit segment width, for
    /// matrices whose consumers concatenate or gather column groups
    /// (embedding tables use `seg = dim`). `cols` must be a whole
    /// number of segments.
    pub fn encrypt_mode_seg(
        &self,
        m: &Dense,
        seg: usize,
        mode: PaillierMode,
        obf: &Obfuscator,
    ) -> CtMat {
        if let (PaillierMode::Packed, PublicKey::Paillier(pk)) = (mode, self) {
            if let Some(layout) = SlotLayout::for_key(pk.key_bits, pk.frac_bits) {
                // Packing only pays off (and chunk maths only holds) for
                // ≥2-column segments tiling the matrix exactly. The
                // decision depends on shared configuration and shape
                // only, so both parties always agree on the layout.
                if seg >= 2 && m.cols() % seg == 0 {
                    return self.encrypt_packed(pk, m, seg, layout, obf);
                }
            }
        }
        self.encrypt(m, obf)
    }

    /// Packed encryption body: one ciphertext per column chunk.
    fn encrypt_packed(
        &self,
        pk: &PaillierPk,
        m: &Dense,
        seg: usize,
        layout: SlotLayout,
        obf: &Obfuscator,
    ) -> CtMat {
        let k = pk.ct_limbs();
        let proto = PackedCtMat {
            k,
            layout,
            seg,
            limbs: Vec::new(),
        };
        let nchunks = proto.chunks_total(m.cols());
        let per: Vec<Vec<u64>> = par_map(m.rows() * nchunks, |idx| {
            let (i, c) = (idx / nchunks, idx % nchunks);
            let col0 = proto.chunk_col0(c);
            let used = proto.used_in_chunk(c);
            let vals = &m.row(i)[col0..col0 + used];
            let p = pack::pack_values(vals, pk.frac_bits, 1, layout, &pk.n)
                .expect("encrypt: value overflows its pack slot");
            pk.raw_encrypt(&p, &obf.next_rn(pk))
        });
        CtMat {
            rows: m.rows(),
            cols: m.cols(),
            scale: 1,
            body: Body::Packed(PackedCtMat {
                limbs: flatten(per, k),
                ..proto
            }),
        }
    }

    /// Encrypt a dense matrix at an explicit fixed-point scale (used
    /// when a fresh encryption must be added to a scale-2 product,
    /// e.g. `⟦∇Z·V_Aᵀ⟧` in the Embed-MatMul backward pass).
    pub fn encrypt_at_scale(&self, m: &Dense, scale: u8, obf: &Obfuscator) -> CtMat {
        match self {
            PublicKey::Paillier(pk) => {
                let k = pk.ct_limbs();
                let n = m.rows() * m.cols();
                let data = m.data();
                let per_entry: Vec<Vec<u64>> = par_map(n, |i| {
                    let enc = codec::encode(data[i], pk.frac_bits, scale, &pk.n);
                    pk.raw_encrypt(&enc, &obf.next_rn(pk))
                });
                CtMat {
                    rows: m.rows(),
                    cols: m.cols(),
                    scale,
                    body: Body::Enc {
                        k,
                        limbs: flatten(per_entry, k),
                    },
                }
            }
            PublicKey::Plain { frac_bits } => CtMat {
                rows: m.rows(),
                cols: m.cols(),
                scale,
                body: Body::Plain(m.data().iter().map(|&v| quantize(v, *frac_bits)).collect()),
            },
        }
    }

    /// A deterministic matrix of `⟦0⟧` accumulator seeds (scale 2),
    /// used by `lkup_bw` scatter accumulation.
    fn zeros_ct(&self, rows: usize, cols: usize, scale: u8) -> CtMat {
        match self {
            PublicKey::Paillier(pk) => {
                let k = pk.ct_limbs();
                let one = pk.mont.one_mont(); // ⟦0⟧ = g^0 = 1
                let mut limbs = Vec::with_capacity(rows * cols * k);
                for _ in 0..rows * cols {
                    limbs.extend_from_slice(&one);
                }
                CtMat {
                    rows,
                    cols,
                    scale,
                    body: Body::Enc { k, limbs },
                }
            }
            PublicKey::Plain { .. } => CtMat {
                rows,
                cols,
                scale,
                body: Body::Plain(vec![0.0; rows * cols]),
            },
        }
    }

    /// Homomorphic elementwise sum (scales must match).
    pub fn add(&self, a: &CtMat, b: &CtMat) -> CtMat {
        assert_eq!(a.shape(), b.shape(), "ct add shape mismatch");
        assert_eq!(a.scale, b.scale, "ct add scale mismatch");
        match (self, &a.body, &b.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, .. }, Body::Enc { .. }) => {
                let k = *k;
                let n = a.rows * a.cols;
                let per: Vec<Vec<u64>> = par_map(n, |i| {
                    pk.mont.mont_mul(
                        a.entry(k, i / a.cols, i % a.cols),
                        b.entry(k, i / b.cols, i % b.cols),
                    )
                });
                CtMat {
                    rows: a.rows,
                    cols: a.cols,
                    scale: a.scale,
                    body: Body::Enc {
                        k,
                        limbs: flatten(per, k),
                    },
                }
            }
            (PublicKey::Paillier(pk), Body::Packed(pa), Body::Packed(pb)) => {
                assert_eq!(pa.layout, pb.layout, "ct add slot layout mismatch");
                assert_eq!(pa.seg, pb.seg, "ct add segment mismatch");
                let nchunks = pa.chunks_total(a.cols);
                let per: Vec<Vec<u64>> = par_map(a.rows * nchunks, |idx| {
                    let (i, c) = (idx / nchunks, idx % nchunks);
                    pk.mont
                        .mont_mul(pa.entry(a.cols, i, c), pb.entry(b.cols, i, c))
                });
                CtMat {
                    rows: a.rows,
                    cols: a.cols,
                    scale: a.scale,
                    body: Body::Packed(PackedCtMat {
                        k: pa.k,
                        layout: pa.layout,
                        seg: pa.seg,
                        limbs: flatten(per, pa.k),
                    }),
                }
            }
            (PublicKey::Plain { .. }, Body::Plain(va), Body::Plain(vb)) => CtMat {
                rows: a.rows,
                cols: a.cols,
                scale: a.scale,
                body: Body::Plain(va.iter().zip(vb).map(|(x, y)| x + y).collect()),
            },
            _ => panic!("ct add backend mismatch"),
        }
    }

    /// Homomorphic `ct + plain` (plain encoded at the ciphertext's
    /// scale; no fresh randomness — privacy is inherited from `ct`).
    pub fn add_plain(&self, a: &CtMat, p: &Dense) -> CtMat {
        assert_eq!(a.shape(), p.shape(), "add_plain shape mismatch");
        match (self, &a.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, .. }) => {
                let k = *k;
                let n = a.rows * a.cols;
                let data = p.data();
                let per: Vec<Vec<u64>> = par_map(n, |i| {
                    let m = codec::encode(data[i], pk.frac_bits, a.scale, &pk.n);
                    let g = pk.raw_encrypt_deterministic(&m);
                    pk.mont.mont_mul(a.entry(k, i / a.cols, i % a.cols), &g)
                });
                CtMat {
                    rows: a.rows,
                    cols: a.cols,
                    scale: a.scale,
                    body: Body::Enc {
                        k,
                        limbs: flatten(per, k),
                    },
                }
            }
            (PublicKey::Paillier(pk), Body::Packed(pa)) => {
                let nchunks = pa.chunks_total(a.cols);
                let per: Vec<Vec<u64>> = par_map(a.rows * nchunks, |idx| {
                    let (i, c) = (idx / nchunks, idx % nchunks);
                    let col0 = pa.chunk_col0(c);
                    let used = pa.used_in_chunk(c);
                    let vals = &p.row(i)[col0..col0 + used];
                    let m = pack::pack_values(vals, pk.frac_bits, a.scale, pa.layout, &pk.n)
                        .expect("add_plain: value overflows its pack slot");
                    let g = pk.raw_encrypt_deterministic(&m);
                    pk.mont.mont_mul(pa.entry(a.cols, i, c), &g)
                });
                CtMat {
                    rows: a.rows,
                    cols: a.cols,
                    scale: a.scale,
                    body: Body::Packed(PackedCtMat {
                        k: pa.k,
                        layout: pa.layout,
                        seg: pa.seg,
                        limbs: flatten(per, pa.k),
                    }),
                }
            }
            (PublicKey::Plain { .. }, Body::Plain(v)) => CtMat {
                rows: a.rows,
                cols: a.cols,
                scale: a.scale,
                body: Body::Plain(v.iter().zip(p.data()).map(|(x, y)| x + y).collect()),
            },
            _ => panic!("add_plain backend mismatch"),
        }
    }

    /// Homomorphic `ct - plain`.
    pub fn sub_plain(&self, a: &CtMat, p: &Dense) -> CtMat {
        self.add_plain(a, &p.scale(-1.0))
    }

    /// `X · ⟦W⟧` — plaintext features times an encrypted weight matrix
    /// (scale 1 → scale 2). Sparse `X` touches only its non-zeros.
    pub fn matmul(&self, x: &Features, w: &CtMat) -> CtMat {
        assert_eq!(x.cols(), w.rows, "matmul shape mismatch");
        assert_eq!(w.scale, 1, "matmul expects a scale-1 weight ciphertext");
        match (self, &w.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, .. }) => {
                let k = *k;
                let out_cols = w.cols;
                let rows: Vec<Vec<u64>> = par_map(x.rows(), |i| {
                    let mut pos = vec![pk.mont.one_mont(); out_cols];
                    let mut neg: Vec<Option<Vec<u64>>> = vec![None; out_cols];
                    for_each_nonzero(x, i, |c, v| {
                        let e = codec::encode_exponent(v, pk.frac_bits);
                        if e.is_zero() {
                            return;
                        }
                        for j in 0..out_cols {
                            let p = pk.mont.pow_mont(w.entry(k, c, j), &e.mag);
                            accumulate(pk, &mut pos[j], &mut neg[j], p, e.neg);
                        }
                    });
                    resolve_row(pk, pos, neg, k)
                });
                CtMat {
                    rows: x.rows(),
                    cols: out_cols,
                    scale: 2,
                    body: Body::Enc {
                        k,
                        limbs: rows.concat(),
                    },
                }
            }
            (PublicKey::Paillier(pk), Body::Packed(pw)) => {
                // Identical accumulation to the scalar arm, but each
                // pow_mont/mont_mul advances a whole chunk of output
                // columns at once — the packed speedup.
                let nchunks = pw.chunks_total(w.cols);
                let rows: Vec<Vec<u64>> = par_map(x.rows(), |i| {
                    let mut pos = vec![pk.mont.one_mont(); nchunks];
                    let mut neg: Vec<Option<Vec<u64>>> = vec![None; nchunks];
                    for_each_nonzero(x, i, |c, v| {
                        let e = codec::encode_exponent(v, pk.frac_bits);
                        if e.is_zero() {
                            return;
                        }
                        for j in 0..nchunks {
                            let p = pk.mont.pow_mont(pw.entry(w.cols, c, j), &e.mag);
                            accumulate(pk, &mut pos[j], &mut neg[j], p, e.neg);
                        }
                    });
                    resolve_row(pk, pos, neg, pw.k)
                });
                CtMat {
                    rows: x.rows(),
                    cols: w.cols,
                    scale: 2,
                    body: Body::Packed(PackedCtMat {
                        k: pw.k,
                        layout: pw.layout,
                        seg: pw.seg,
                        limbs: rows.concat(),
                    }),
                }
            }
            (PublicKey::Plain { frac_bits }, Body::Plain(wv)) => {
                let wd = Dense::from_vec(w.rows, w.cols, wv.clone());
                let xq = quantize_features(x, *frac_bits);
                CtMat {
                    rows: x.rows(),
                    cols: w.cols,
                    scale: 2,
                    body: Body::Plain(xq.matmul(&wd).data().to_vec()),
                }
            }
            _ => panic!("matmul backend mismatch"),
        }
    }

    /// `Xᵀ · ⟦G⟧` restricted to the feature rows in `support` (sorted
    /// global column indices of `X`): output row `s` is
    /// `Σ_i X[i, support[s]] · G[i, ·]`.
    ///
    /// This is the sparse gradient projection `∇W = Xᵀ∇Z`; for sparse
    /// `X` the protocol only ever materialises the batch's support rows.
    pub fn t_matmul_support(&self, x: &Features, g: &CtMat, support: &[u32]) -> CtMat {
        assert_eq!(x.rows(), g.rows, "t_matmul shape mismatch");
        assert_eq!(g.scale, 1, "t_matmul expects a scale-1 ciphertext");
        // Build per-support-row coefficient lists (i, value).
        let pos_of: std::collections::HashMap<u32, usize> =
            support.iter().enumerate().map(|(p, &c)| (c, p)).collect();
        let mut coeffs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); support.len()];
        for i in 0..x.rows() {
            for_each_nonzero(x, i, |c, v| {
                if let Some(&p) = pos_of.get(&(c as u32)) {
                    coeffs[p].push((i, v));
                }
            });
        }
        match (self, &g.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, .. }) => {
                let k = *k;
                let out_cols = g.cols;
                let rows: Vec<Vec<u64>> = par_map(support.len(), |s| {
                    let mut pos = vec![pk.mont.one_mont(); out_cols];
                    let mut neg: Vec<Option<Vec<u64>>> = vec![None; out_cols];
                    for &(i, v) in &coeffs[s] {
                        let e = codec::encode_exponent(v, pk.frac_bits);
                        if e.is_zero() {
                            continue;
                        }
                        for j in 0..out_cols {
                            let p = pk.mont.pow_mont(g.entry(k, i, j), &e.mag);
                            accumulate(pk, &mut pos[j], &mut neg[j], p, e.neg);
                        }
                    }
                    resolve_row(pk, pos, neg, k)
                });
                CtMat {
                    rows: support.len(),
                    cols: g.cols,
                    scale: 2,
                    body: Body::Enc {
                        k,
                        limbs: rows.concat(),
                    },
                }
            }
            (PublicKey::Paillier(pk), Body::Packed(pg)) => {
                let nchunks = pg.chunks_total(g.cols);
                let rows: Vec<Vec<u64>> = par_map(support.len(), |s| {
                    let mut pos = vec![pk.mont.one_mont(); nchunks];
                    let mut neg: Vec<Option<Vec<u64>>> = vec![None; nchunks];
                    for &(i, v) in &coeffs[s] {
                        let e = codec::encode_exponent(v, pk.frac_bits);
                        if e.is_zero() {
                            continue;
                        }
                        for j in 0..nchunks {
                            let p = pk.mont.pow_mont(pg.entry(g.cols, i, j), &e.mag);
                            accumulate(pk, &mut pos[j], &mut neg[j], p, e.neg);
                        }
                    }
                    resolve_row(pk, pos, neg, pg.k)
                });
                CtMat {
                    rows: support.len(),
                    cols: g.cols,
                    scale: 2,
                    body: Body::Packed(PackedCtMat {
                        k: pg.k,
                        layout: pg.layout,
                        seg: pg.seg,
                        limbs: rows.concat(),
                    }),
                }
            }
            (PublicKey::Plain { frac_bits }, Body::Plain(gv)) => {
                let gd = Dense::from_vec(g.rows, g.cols, gv.clone());
                let mut out = Dense::zeros(support.len(), g.cols);
                for (s, list) in coeffs.iter().enumerate() {
                    for &(i, v) in list {
                        let vq = quantize(v, *frac_bits);
                        let orow = out.row_mut(s);
                        for (o, &gval) in orow.iter_mut().zip(gd.row(i)) {
                            *o += vq * gval;
                        }
                    }
                }
                CtMat {
                    rows: support.len(),
                    cols: g.cols,
                    scale: 2,
                    body: Body::Plain(out.data().to_vec()),
                }
            }
            _ => panic!("t_matmul backend mismatch"),
        }
    }

    /// `⟦G⟧ · Wᵀ` — encrypted activations times a plaintext weight
    /// transpose: output `(i, e) = Σ_j G[i,j]·W[e,j]` (scale 1 → 2).
    /// Used for `⟦∇E⟧ = ⟦∇Z⟧·Uᵀ` in the Embed-MatMul backward pass.
    pub fn matmul_ct_wt(&self, g: &CtMat, w: &Dense) -> CtMat {
        assert_eq!(g.cols, w.cols(), "matmul_ct_wt shape mismatch");
        assert_eq!(g.scale, 1, "matmul_ct_wt expects a scale-1 ciphertext");
        assert!(
            !g.is_packed(),
            "matmul_ct_wt contracts over the packed axis; keep ⟦G⟧ scalar"
        );
        match (self, &g.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, .. }) => {
                let k = *k;
                let out_cols = w.rows();
                let rows: Vec<Vec<u64>> = par_map(g.rows, |i| {
                    let mut pos = vec![pk.mont.one_mont(); out_cols];
                    let mut neg: Vec<Option<Vec<u64>>> = vec![None; out_cols];
                    for j in 0..g.cols {
                        let ct = g.entry(k, i, j);
                        for e_idx in 0..out_cols {
                            let e = codec::encode_exponent(w.get(e_idx, j), pk.frac_bits);
                            if e.is_zero() {
                                continue;
                            }
                            let p = pk.mont.pow_mont(ct, &e.mag);
                            accumulate(pk, &mut pos[e_idx], &mut neg[e_idx], p, e.neg);
                        }
                    }
                    resolve_row(pk, pos, neg, k)
                });
                CtMat {
                    rows: g.rows,
                    cols: out_cols,
                    scale: 2,
                    body: Body::Enc {
                        k,
                        limbs: rows.concat(),
                    },
                }
            }
            (PublicKey::Plain { frac_bits }, Body::Plain(gv)) => {
                let gd = Dense::from_vec(g.rows, g.cols, gv.clone());
                let wq = Dense::from_vec(
                    w.rows(),
                    w.cols(),
                    w.data().iter().map(|&v| quantize(v, *frac_bits)).collect(),
                );
                CtMat {
                    rows: g.rows,
                    cols: w.rows(),
                    scale: 2,
                    body: Body::Plain(gd.matmul_t(&wq).data().to_vec()),
                }
            }
            _ => panic!("matmul_ct_wt backend mismatch"),
        }
    }

    /// Embedding lookup over an encrypted table: gathers, for each
    /// instance, the table rows of its categorical indices and
    /// concatenates them (`rows × fields·dim`). Pure data movement — the
    /// indices never leave their owner.
    pub fn lkup(&self, table: &CtMat, x: &CatBlock) -> CtMat {
        assert_eq!(table.rows, x.vocab(), "lkup vocab mismatch");
        let dim = table.cols;
        let fields = x.fields();
        match &table.body {
            // Pure limb gather, chunk-wise: each gathered table row is a
            // whole number of segments, so the concatenated output keeps
            // the table's segment alignment.
            Body::Packed(p) => {
                let stride = p.chunks_total(dim) * p.k;
                let mut out = Vec::with_capacity(x.rows() * fields * stride);
                for r in 0..x.rows() {
                    for &g in x.row(r) {
                        let off = g as usize * stride;
                        out.extend_from_slice(&p.limbs[off..off + stride]);
                    }
                }
                CtMat {
                    rows: x.rows(),
                    cols: fields * dim,
                    scale: table.scale,
                    body: Body::Packed(PackedCtMat {
                        k: p.k,
                        layout: p.layout,
                        seg: p.seg,
                        limbs: out,
                    }),
                }
            }
            Body::Enc { k, limbs } => {
                let k = *k;
                let stride = dim * k;
                let mut out = Vec::with_capacity(x.rows() * fields * stride);
                for r in 0..x.rows() {
                    for &g in x.row(r) {
                        let off = g as usize * stride;
                        out.extend_from_slice(&limbs[off..off + stride]);
                    }
                }
                CtMat {
                    rows: x.rows(),
                    cols: fields * dim,
                    scale: table.scale,
                    body: Body::Enc { k, limbs: out },
                }
            }
            Body::Plain(v) => {
                let mut out = Vec::with_capacity(x.rows() * fields * dim);
                for r in 0..x.rows() {
                    for &g in x.row(r) {
                        let off = g as usize * dim;
                        out.extend_from_slice(&v[off..off + dim]);
                    }
                }
                CtMat {
                    rows: x.rows(),
                    cols: fields * dim,
                    scale: table.scale,
                    body: Body::Plain(out),
                }
            }
        }
    }

    /// Embedding backward over encrypted derivatives: scatter-adds each
    /// instance-field slice of `⟦∇E⟧` into the touched table rows.
    /// Output row `s` is `Σ_{(r,f): X[r,f]=support[s]} ∇E[r, f·dim..]`
    /// — only the batch-support rows are materialised (sparse).
    pub fn lkup_bw(&self, grad_e: &CtMat, x: &CatBlock, support: &[u32], dim: usize) -> CtMat {
        assert_eq!(grad_e.cols, x.fields() * dim, "lkup_bw shape mismatch");
        assert_eq!(grad_e.rows, x.rows(), "lkup_bw row mismatch");
        assert!(
            !grad_e.is_packed(),
            "lkup_bw scatters single columns; keep ⟦∇E⟧ scalar"
        );
        // Per-support hit lists.
        let pos_of: std::collections::HashMap<u32, usize> =
            support.iter().enumerate().map(|(p, &c)| (c, p)).collect();
        let mut hits: Vec<Vec<(usize, usize)>> = vec![Vec::new(); support.len()];
        for r in 0..x.rows() {
            for (f, &g) in x.row(r).iter().enumerate() {
                if let Some(&p) = pos_of.get(&g) {
                    hits[p].push((r, f));
                }
            }
        }
        let mut out = self.zeros_ct(support.len(), dim, grad_e.scale);
        match (self, &mut out.body, &grad_e.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, limbs }, Body::Enc { .. }) => {
                let k = *k;
                let rows: Vec<Vec<u64>> = par_map(support.len(), |s| {
                    let mut acc = vec![pk.mont.one_mont(); dim];
                    for &(r, f) in &hits[s] {
                        #[allow(clippy::needless_range_loop)]
                        for d in 0..dim {
                            let ct = grad_e.entry(k, r, f * dim + d);
                            acc[d] = pk.mont.mont_mul(&acc[d], ct);
                        }
                    }
                    acc.concat()
                });
                *limbs = rows.concat();
            }
            (PublicKey::Plain { .. }, Body::Plain(ov), Body::Plain(gv)) => {
                for (s, list) in hits.iter().enumerate() {
                    for &(r, f) in list {
                        for d in 0..dim {
                            ov[s * dim + d] += gv[r * grad_e.cols + f * dim + d];
                        }
                    }
                }
            }
            _ => panic!("lkup_bw backend mismatch"),
        }
        out
    }

    /// Homomorphically add `delta`'s rows into the given rows of a
    /// cached ciphertext (the `Recv and Update ⟦V⟧` steps of Figures 6
    /// and 7). Scales must match.
    pub fn rows_add_assign(&self, cache: &mut CtMat, rows: &[usize], delta: &CtMat) {
        assert_eq!(rows.len(), delta.rows, "rows_add_assign row mismatch");
        assert_eq!(cache.cols, delta.cols, "rows_add_assign col mismatch");
        assert_eq!(cache.scale, delta.scale, "rows_add_assign scale mismatch");
        match (self, &mut cache.body, &delta.body) {
            (PublicKey::Paillier(pk), Body::Enc { k, limbs }, Body::Enc { .. }) => {
                let k = *k;
                let stride = cache.cols * k;
                for (d, &r) in rows.iter().enumerate() {
                    for j in 0..cache.cols {
                        let prod = {
                            let cur = &limbs[r * stride + j * k..r * stride + (j + 1) * k];
                            pk.mont.mont_mul(cur, delta.entry(k, d, j))
                        };
                        limbs[r * stride + j * k..r * stride + (j + 1) * k].copy_from_slice(&prod);
                    }
                }
            }
            (PublicKey::Paillier(pk), Body::Packed(pc), Body::Packed(pd)) => {
                assert_eq!(pc.layout, pd.layout, "rows_add_assign layout mismatch");
                assert_eq!(pc.seg, pd.seg, "rows_add_assign segment mismatch");
                let k = pc.k;
                let nchunks = pc.chunks_total(cache.cols);
                let stride = nchunks * k;
                for (d, &r) in rows.iter().enumerate() {
                    for c in 0..nchunks {
                        let prod = {
                            let cur = &pc.limbs[r * stride + c * k..r * stride + (c + 1) * k];
                            pk.mont.mont_mul(cur, pd.entry(delta.cols, d, c))
                        };
                        pc.limbs[r * stride + c * k..r * stride + (c + 1) * k]
                            .copy_from_slice(&prod);
                    }
                }
            }
            (PublicKey::Plain { .. }, Body::Plain(cv), Body::Plain(dv)) => {
                for (d, &r) in rows.iter().enumerate() {
                    for j in 0..cache.cols {
                        cv[r * cache.cols + j] += dv[d * cache.cols + j];
                    }
                }
            }
            _ => panic!("rows_add_assign backend mismatch"),
        }
    }
}

impl SecretKey {
    /// Decrypt to a dense matrix, rescaling by the ciphertext's
    /// fixed-point scale.
    pub fn decrypt(&self, ct: &CtMat) -> Dense {
        match (self, &ct.body) {
            (SecretKey::Paillier(sk), Body::Enc { k, .. }) => {
                let pk = sk.pk();
                let n = ct.rows * ct.cols;
                let k = *k;
                let vals: Vec<f64> = par_map(n, |i| {
                    let m = sk.raw_decrypt(ct.entry(k, i / ct.cols, i % ct.cols));
                    codec::decode(&m, pk.frac_bits, ct.scale, &pk.n, &pk.half_n)
                });
                Dense::from_vec(ct.rows, ct.cols, vals)
            }
            (SecretKey::Paillier(sk), Body::Packed(p)) => {
                let pk = sk.pk();
                let nchunks = p.chunks_total(ct.cols);
                let rows: Vec<Vec<f64>> = par_map(ct.rows, |i| {
                    let mut row = Vec::with_capacity(ct.cols);
                    for c in 0..nchunks {
                        let m = sk.raw_decrypt(p.entry(ct.cols, i, c));
                        pack::unpack_values(
                            &m,
                            p.used_in_chunk(c),
                            pk.frac_bits,
                            ct.scale,
                            p.layout,
                            &pk.n,
                            &pk.half_n,
                            &mut row,
                        );
                    }
                    row
                });
                Dense::from_vec(ct.rows, ct.cols, rows.concat())
            }
            (SecretKey::Plain, Body::Plain(v)) => Dense::from_vec(ct.rows, ct.cols, v.clone()),
            _ => panic!("decrypt backend mismatch"),
        }
    }
}

#[allow(clippy::needless_range_loop)]
/// (index-parallel accumulator loops above)
/// Iterate the non-zeros of row `i` of a feature block.
fn for_each_nonzero(x: &Features, i: usize, mut f: impl FnMut(usize, f64)) {
    match x {
        Features::Dense(d) => {
            for (c, &v) in d.row(i).iter().enumerate() {
                if v != 0.0 {
                    f(c, v);
                }
            }
        }
        Features::Sparse(s) => {
            let (idx, vals) = s.row(i);
            for (&c, &v) in idx.iter().zip(vals) {
                f(c as usize, v);
            }
        }
    }
}

fn quantize_features(x: &Features, frac_bits: u32) -> Dense {
    let d = x.to_dense();
    d.map(|v| quantize(v, frac_bits))
}

/// Fold a signed partial product into the positive/negative accumulators.
fn accumulate(
    pk: &PaillierPk,
    pos: &mut Vec<u64>,
    neg: &mut Option<Vec<u64>>,
    p: Vec<u64>,
    is_neg: bool,
) {
    if is_neg {
        *neg = Some(match neg.take() {
            Some(cur) => pk.mont.mont_mul(&cur, &p),
            None => p,
        });
    } else {
        *pos = pk.mont.mont_mul(pos, &p);
    }
}

/// Resolve a row of accumulators: `pos · neg^{-1}` with one batched
/// inversion for the whole row; returns the row's flat limbs.
fn resolve_row(
    pk: &PaillierPk,
    pos: Vec<Vec<u64>>,
    neg: Vec<Option<Vec<u64>>>,
    _k: usize,
) -> Vec<u64> {
    let need: Vec<usize> = neg
        .iter()
        .enumerate()
        .filter_map(|(j, n)| n.as_ref().map(|_| j))
        .collect();
    if need.is_empty() {
        return pos.concat();
    }
    let values: Vec<BigUint> = need
        .iter()
        .map(|&j| pk.mont.from_mont(neg[j].as_ref().unwrap()))
        .collect();
    let invs = batch_mod_inv(&values, &pk.n2);
    let mut out = pos;
    for (&j, inv) in need.iter().zip(&invs) {
        let inv_mont = pk.mont.to_mont(inv);
        out[j] = pk.mont.mont_mul(&out[j], &inv_mont);
    }
    out.concat()
}

fn flatten(per: Vec<Vec<u64>>, _k: usize) -> Vec<u64> {
    per.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{keygen, plain_keys};
    use crate::{ObfMode, Obfuscator};
    use bf_tensor::Csr;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, SecretKey, Obfuscator) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let (pk, sk) = keygen(256, 20, &mut rng);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(8), 5);
        (pk, sk, obf)
    }

    fn dense(rows: usize, cols: usize, seed: u64) -> Dense {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bf_tensor::init::uniform(&mut rng, rows, cols, 3.0)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (pk, sk, obf) = setup();
        let m = dense(3, 4, 1);
        let ct = pk.encrypt(&m, &obf);
        assert_eq!(ct.scale(), 1);
        assert!(sk.decrypt(&ct).approx_eq(&m, 1e-5));
    }

    #[test]
    fn homomorphic_add_and_plain_ops() {
        let (pk, sk, obf) = setup();
        let a = dense(2, 3, 2);
        let b = dense(2, 3, 3);
        let ca = pk.encrypt(&a, &obf);
        let cb = pk.encrypt(&b, &obf);
        assert!(sk.decrypt(&pk.add(&ca, &cb)).approx_eq(&a.add(&b), 1e-5));
        assert!(sk
            .decrypt(&pk.add_plain(&ca, &b))
            .approx_eq(&a.add(&b), 1e-5));
        assert!(sk
            .decrypt(&pk.sub_plain(&ca, &b))
            .approx_eq(&a.sub(&b), 1e-5));
    }

    #[test]
    fn matmul_dense_matches_plaintext() {
        let (pk, sk, obf) = setup();
        let x = dense(4, 3, 4);
        let w = dense(3, 2, 5);
        let cw = pk.encrypt(&w, &obf);
        let cz = pk.matmul(&Features::Dense(x.clone()), &cw);
        assert_eq!(cz.scale(), 2);
        assert!(sk.decrypt(&cz).approx_eq(&x.matmul(&w), 1e-4));
    }

    #[test]
    fn matmul_sparse_matches_plaintext() {
        let (pk, sk, obf) = setup();
        let mut xd = dense(5, 6, 6);
        // Zero out most entries.
        for (i, v) in xd.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let x = Csr::from_dense(&xd);
        let w = dense(6, 2, 7);
        let cw = pk.encrypt(&w, &obf);
        let cz = pk.matmul(&Features::Sparse(x), &cw);
        assert!(sk.decrypt(&cz).approx_eq(&xd.matmul(&w), 1e-4));
    }

    #[test]
    fn t_matmul_support_matches_plaintext() {
        let (pk, sk, obf) = setup();
        let mut xd = dense(4, 5, 8);
        for (i, v) in xd.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let x = Csr::from_dense(&xd);
        let support = x.col_support();
        let g = dense(4, 3, 9);
        let cg = pk.encrypt(&g, &obf);
        let cgrad = pk.t_matmul_support(&Features::Sparse(x), &cg, &support);
        let full = xd.t_matmul(&g);
        let want = full.select_rows(&support.iter().map(|&c| c as usize).collect::<Vec<_>>());
        assert!(sk.decrypt(&cgrad).approx_eq(&want, 1e-4));
    }

    #[test]
    fn matmul_ct_wt_matches_plaintext() {
        let (pk, sk, obf) = setup();
        let g = dense(3, 4, 10);
        let w = dense(5, 4, 11);
        let cg = pk.encrypt(&g, &obf);
        let out = pk.matmul_ct_wt(&cg, &w);
        assert!(sk.decrypt(&out).approx_eq(&g.matmul_t(&w), 1e-4));
    }

    #[test]
    fn lkup_and_lkup_bw_roundtrip() {
        let (pk, sk, obf) = setup();
        let table = dense(6, 2, 12); // vocab 6, dim 2
        let x = CatBlock::from_local(3, &[3, 3], vec![0, 2, 1, 0, 2, 2]);
        let ct = pk.encrypt(&table, &obf);
        let e = pk.lkup(&ct, &x);
        assert_eq!(e.shape(), (3, 4));
        // Expected plaintext lookup.
        let mut want = Dense::zeros(3, 4);
        for r in 0..3 {
            for (f, &g) in x.row(r).iter().enumerate() {
                for d in 0..2 {
                    want.set(r, f * 2 + d, table.get(g as usize, d));
                }
            }
        }
        assert!(sk.decrypt(&e).approx_eq(&want, 1e-5));

        // lkup_bw: scatter a gradient back; compare against a dense
        // scatter-add reference.
        let grad_e = dense(3, 4, 13);
        let cge = pk.encrypt(&grad_e, &obf);
        let support = x.support();
        let gq = pk.lkup_bw(&cge, &x, &support, 2);
        let mut want_q = Dense::zeros(support.len(), 2);
        for r in 0..3 {
            for (f, &g) in x.row(r).iter().enumerate() {
                let s = support.binary_search(&g).unwrap();
                for d in 0..2 {
                    let cur = want_q.get(s, d);
                    want_q.set(s, d, cur + grad_e.get(r, f * 2 + d));
                }
            }
        }
        assert!(sk.decrypt(&gq).approx_eq(&want_q, 1e-4));
    }

    #[test]
    fn rows_add_assign_updates_cache() {
        let (pk, sk, obf) = setup();
        let v = dense(4, 2, 14);
        let delta = dense(2, 2, 15);
        let mut cache = pk.encrypt(&v, &obf);
        let cdelta = pk.encrypt(&delta, &obf);
        pk.rows_add_assign(&mut cache, &[1, 3], &cdelta);
        let got = sk.decrypt(&cache);
        let mut want = v.clone();
        for (d, &r) in [1usize, 3].iter().enumerate() {
            for j in 0..2 {
                let cur = want.get(r, j);
                want.set(r, j, cur + delta.get(d, j));
            }
        }
        assert!(got.approx_eq(&want, 1e-5));
    }

    #[test]
    fn select_rows_gathers() {
        let (pk, sk, obf) = setup();
        let m = dense(4, 3, 16);
        let ct = pk.encrypt(&m, &obf);
        let sel = ct.select_rows(&[2, 0]);
        assert!(sk.decrypt(&sel).approx_eq(&m.select_rows(&[2, 0]), 1e-5));
    }

    #[test]
    fn plain_backend_mirrors_paillier() {
        let (pk, sk) = plain_keys(20);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(2), 0);
        let x = dense(4, 3, 17);
        let w = dense(3, 2, 18);
        let cw = pk.encrypt(&w, &obf);
        let cz = pk.matmul(&Features::Dense(x.clone()), &cw);
        assert!(sk.decrypt(&cz).approx_eq(&x.matmul(&w), 1e-4));
        let g = dense(4, 2, 19);
        let cg = pk.encrypt(&g, &obf);
        let support: Vec<u32> = (0..3).collect();
        let grad = pk.t_matmul_support(&Features::Dense(x.clone()), &cg, &support);
        assert!(sk.decrypt(&grad).approx_eq(&x.t_matmul(&g), 1e-4));
    }

    #[test]
    fn transpose_roundtrip_and_decrypt() {
        let (pk, sk, obf) = setup();
        let m = dense(3, 5, 21);
        let ct = pk.encrypt(&m, &obf);
        let t = ct.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert!(sk.decrypt(&t).approx_eq(&m.transpose(), 1e-5));
        assert!(sk.decrypt(&t.transpose()).approx_eq(&m, 1e-5));
    }

    #[test]
    fn encrypt_at_scale_two_adds_with_products() {
        let (pk, sk, obf) = setup();
        let x = dense(2, 3, 22);
        let w = dense(3, 2, 23);
        let cw = pk.encrypt(&w, &obf);
        let prod = pk.matmul(&Features::Dense(x.clone()), &cw); // scale 2
        let extra = dense(2, 2, 24);
        let cextra = pk.encrypt_at_scale(&extra, 2, &obf);
        let sum = pk.add(&prod, &cextra);
        assert!(sk.decrypt(&sum).approx_eq(&x.matmul(&w).add(&extra), 1e-4));
    }

    #[test]
    fn matmul_with_transposed_ct() {
        // G·⟦W⟧ᵀ via matmul(Features, ⟦W⟧.transpose()): the ∇Z·V_Bᵀ path.
        let (pk, sk, obf) = setup();
        let g = dense(3, 2, 25); // bs × out
        let v = dense(4, 2, 26); // d_e × out
        let cv = pk.encrypt(&v, &obf);
        let out = pk.matmul(&Features::Dense(g.clone()), &cv.transpose());
        assert!(sk.decrypt(&out).approx_eq(&g.matmul_t(&v), 1e-4));
    }

    #[test]
    fn wire_size_positive() {
        let (pk, _, obf) = setup();
        let ct = pk.encrypt(&dense(2, 2, 20), &obf);
        assert!(ct.wire_size() > 4 * 8);
    }

    // ---- packed fast path ------------------------------------------------
    //
    // The contract is *bit-identity*: every packed op must decrypt to
    // exactly the same f64s as its scalar counterpart, not merely
    // approximately. The 256-bit/frac-20 fixture packs 3 slots of 80
    // bits per ciphertext.

    #[test]
    fn packed_encrypt_decrypt_bit_identical_to_scalar() {
        let (pk, sk, obf) = setup();
        let m = dense(3, 4, 30);
        let cs = pk.encrypt(&m, &obf);
        let cp = pk.encrypt_mode(&m, PaillierMode::Packed, &obf);
        assert!(cp.is_packed());
        assert!(!cs.is_packed());
        assert_eq!(sk.decrypt(&cp).data(), sk.decrypt(&cs).data());
        // Packing 4 columns into ceil(4/3)=2 ciphertexts per row beats
        // 4 scalar ciphertexts on the wire.
        assert!(cp.wire_size() < cs.wire_size());
    }

    #[test]
    fn packed_matmul_bit_identical_to_scalar() {
        let (pk, sk, obf) = setup();
        let x = dense(4, 3, 31);
        let w = dense(3, 5, 32);
        let cs = pk.matmul(&Features::Dense(x.clone()), &pk.encrypt(&w, &obf));
        let cp = pk.matmul(
            &Features::Dense(x),
            &pk.encrypt_mode(&w, PaillierMode::Packed, &obf),
        );
        assert!(cp.is_packed());
        assert_eq!(cp.scale(), 2);
        assert_eq!(sk.decrypt(&cp).data(), sk.decrypt(&cs).data());
    }

    #[test]
    fn packed_sparse_matmul_and_t_matmul_bit_identical() {
        let (pk, sk, obf) = setup();
        let mut xd = dense(4, 5, 33);
        for (i, v) in xd.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let x = Csr::from_dense(&xd);
        let w = dense(5, 4, 34);
        let cs = pk.matmul(&Features::Sparse(x.clone()), &pk.encrypt(&w, &obf));
        let cp = pk.matmul(
            &Features::Sparse(x.clone()),
            &pk.encrypt_mode(&w, PaillierMode::Packed, &obf),
        );
        assert_eq!(sk.decrypt(&cp).data(), sk.decrypt(&cs).data());

        let support = x.col_support();
        let g = dense(4, 4, 35);
        let gs = pk.t_matmul_support(
            &Features::Sparse(x.clone()),
            &pk.encrypt(&g, &obf),
            &support,
        );
        let gp = pk.t_matmul_support(
            &Features::Sparse(x),
            &pk.encrypt_mode(&g, PaillierMode::Packed, &obf),
            &support,
        );
        assert!(gp.is_packed());
        assert_eq!(sk.decrypt(&gp).data(), sk.decrypt(&gs).data());
    }

    #[test]
    fn packed_add_family_bit_identical() {
        let (pk, sk, obf) = setup();
        let a = dense(2, 4, 36);
        let b = dense(2, 4, 37);
        let (csa, csb) = (pk.encrypt(&a, &obf), pk.encrypt(&b, &obf));
        let cpa = pk.encrypt_mode(&a, PaillierMode::Packed, &obf);
        let cpb = pk.encrypt_mode(&b, PaillierMode::Packed, &obf);
        assert_eq!(
            sk.decrypt(&pk.add(&cpa, &cpb)).data(),
            sk.decrypt(&pk.add(&csa, &csb)).data()
        );
        assert_eq!(
            sk.decrypt(&pk.add_plain(&cpa, &b)).data(),
            sk.decrypt(&pk.add_plain(&csa, &b)).data()
        );

        let delta = dense(2, 4, 38);
        let mut cache_s = pk.encrypt(&dense(4, 4, 39), &obf);
        let mut cache_p = pk.encrypt_mode(&dense(4, 4, 39), PaillierMode::Packed, &obf);
        pk.rows_add_assign(&mut cache_s, &[0, 3], &pk.encrypt(&delta, &obf));
        pk.rows_add_assign(
            &mut cache_p,
            &[0, 3],
            &pk.encrypt_mode(&delta, PaillierMode::Packed, &obf),
        );
        assert_eq!(sk.decrypt(&cache_p).data(), sk.decrypt(&cache_s).data());
    }

    #[test]
    fn packed_lkup_and_select_rows_bit_identical() {
        let (pk, sk, obf) = setup();
        let table = dense(6, 2, 40); // vocab 6, dim 2
        let x = CatBlock::from_local(3, &[3, 3], vec![0, 2, 1, 0, 2, 2]);
        // Embedding tables pack with seg = dim so gathered rows keep
        // chunk alignment after concatenation.
        let cts = pk.encrypt(&table, &obf);
        let ctp = pk.encrypt_mode_seg(&table, 2, PaillierMode::Packed, &obf);
        assert!(ctp.is_packed());
        let es = pk.lkup(&cts, &x);
        let ep = pk.lkup(&ctp, &x);
        assert!(ep.is_packed());
        assert_eq!(sk.decrypt(&ep).data(), sk.decrypt(&es).data());

        let sel_s = cts.select_rows(&[4, 1]);
        let sel_p = ctp.select_rows(&[4, 1]);
        assert_eq!(sk.decrypt(&sel_p).data(), sk.decrypt(&sel_s).data());
    }

    #[test]
    fn packed_falls_back_to_scalar_when_unhelpful() {
        let (pk, _, obf) = setup();
        // One column: nothing to pack together.
        let ct = pk.encrypt_mode(&dense(3, 1, 41), PaillierMode::Packed, &obf);
        assert!(!ct.is_packed());
        // Segment that does not divide cols: alignment impossible.
        let ct = pk.encrypt_mode_seg(&dense(3, 5, 42), 3, PaillierMode::Packed, &obf);
        assert!(!ct.is_packed());
        // Key too small for two slots (128-bit, frac 32 → 104-bit slots).
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let (small_pk, _) = keygen(128, 32, &mut rng);
        let small_obf = Obfuscator::new(&small_pk, ObfMode::Pool(4), 5);
        let ct = small_pk.encrypt_mode(&dense(2, 4, 44), PaillierMode::Packed, &small_obf);
        assert!(!ct.is_packed());
        // Scalar mode never packs.
        let ct = pk.encrypt_mode(&dense(2, 4, 45), PaillierMode::Scalar, &obf);
        assert!(!ct.is_packed());
    }

    #[test]
    #[should_panic(expected = "transpose is unsupported for packed")]
    fn packed_transpose_panics() {
        let (pk, _, obf) = setup();
        let ct = pk.encrypt_mode(&dense(2, 4, 46), PaillierMode::Packed, &obf);
        let _ = ct.transpose();
    }

    #[test]
    #[should_panic(expected = "matmul_ct_wt contracts over the packed axis")]
    fn packed_matmul_ct_wt_panics() {
        let (pk, _, obf) = setup();
        let g = pk.encrypt_mode(&dense(3, 4, 47), PaillierMode::Packed, &obf);
        let _ = pk.matmul_ct_wt(&g, &dense(5, 4, 48));
    }

    #[test]
    #[should_panic(expected = "lkup_bw scatters single columns")]
    fn packed_lkup_bw_panics() {
        let (pk, _, obf) = setup();
        let x = CatBlock::from_local(3, &[3, 3], vec![0, 2, 1, 0, 2, 2]);
        let ge = pk.encrypt_mode(&dense(3, 4, 49), PaillierMode::Packed, &obf);
        let _ = pk.lkup_bw(&ge, &x, &x.support(), 2);
    }
}
