//! Paillier key generation, encryption, and CRT decryption, plus the
//! `Plain` testing backend.

use std::sync::Arc;

use bf_bigint::{gen_prime, mod_inv, modular::lcm, BigUint, MontCtx};
use rand::Rng;

use crate::codec;

/// Paillier public parameters plus precomputed Montgomery context for
/// `n^2`. Shared via `Arc` inside [`PublicKey`].
#[derive(Clone, Debug)]
pub struct PaillierPk {
    /// Modulus `n = p·q`.
    pub n: BigUint,
    /// `n^2` (ciphertext modulus).
    pub n2: BigUint,
    /// Montgomery context mod `n^2` — ciphertexts live in this domain.
    pub mont: MontCtx,
    /// `n/2`, the positive/negative decoding threshold.
    pub half_n: BigUint,
    /// Fixed-point fractional bits.
    pub frac_bits: u32,
    /// Modulus size in bits.
    pub key_bits: usize,
}

impl PaillierPk {
    /// Limbs per ciphertext (the width of the `n^2` Montgomery domain).
    pub fn ct_limbs(&self) -> usize {
        self.mont.limb_count()
    }

    /// Raw Paillier encryption of a ring element `m ∈ Z_n` with the
    /// supplied obfuscation `r^n` (Montgomery form). Returns the
    /// ciphertext in Montgomery form.
    ///
    /// Uses the `g = n+1` optimisation: `g^m = 1 + m·n (mod n^2)`, one
    /// multiplication instead of an exponentiation.
    pub fn raw_encrypt(&self, m: &BigUint, rn_mont: &[u64]) -> Vec<u64> {
        let gm = BigUint::one().add(&m.mul(&self.n)); // < n^2 since m < n
        let gm_mont = self.mont.to_mont(&gm);
        self.mont.mont_mul(&gm_mont, rn_mont)
    }

    /// Deterministic (obfuscation-free) encryption of a ring element.
    /// Only valid where the result's privacy is inherited from other
    /// ciphertexts it is combined with (e.g. `⟦v⟧ - φ` in HE2SS) or
    /// where the value is an accumulator seed (`⟦0⟧` in `lkup_bw`).
    pub fn raw_encrypt_deterministic(&self, m: &BigUint) -> Vec<u64> {
        let gm = BigUint::one().add(&m.mul(&self.n));
        self.mont.to_mont(&gm)
    }
}

/// Precomputed table for fixed-base windowed exponentiation: for a base
/// `b` fixed per key, `windows[i][d] = b^(d·16^i)` in Montgomery form.
///
/// `pow(e)` is then `Π_i windows[i][digit_i(e)]` — one multiply per
/// non-zero 4-bit digit and **no squarings at all**, versus 4 squarings
/// per window for the generic `pow_mont` ladder. The repeated
/// fixed-base pattern in this codebase is the encryption obfuscation
/// stream: the textbook `g^m` is already free via the `g = n+1`
/// shortcut (see [`PaillierPk::raw_encrypt`]), so the exponentiation
/// every encrypt pays for is `r^n`; with a table over a fixed valid
/// obfuscation `h = r_0^n`, each draw becomes a cheap `h^α` (see
/// [`crate::obf::ObfMode::FixedBase`]). Built once per key, reused
/// across every encryption.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    /// `windows[i][d] = base^(d·16^i)`, `d = 0..16`, Montgomery form.
    windows: Vec<Vec<Vec<u64>>>,
    /// Maximum supported exponent width in bits.
    exp_bits: usize,
}

impl FixedBaseTable {
    /// Precompute the table for exponents up to `exp_bits` bits.
    /// Costs ~`exp_bits/4 · 15` multiplies — about the price of two
    /// generic exponentiations, amortised across every later `pow`.
    pub fn new(mont: &MontCtx, base_mont: &[u64], exp_bits: usize) -> Self {
        let nwin = exp_bits.div_ceil(4).max(1);
        let mut windows = Vec::with_capacity(nwin);
        let mut base = base_mont.to_vec();
        for w in 0..nwin {
            let mut row: Vec<Vec<u64>> = Vec::with_capacity(16);
            row.push(mont.one_mont());
            row.push(base.clone());
            for d in 2..16 {
                let next = mont.mont_mul(&row[d - 1], &base);
                row.push(next);
            }
            if w + 1 < nwin {
                base = mont.mont_sqr(&row[8]); // (b^8)^2 = b^16
            }
            windows.push(row);
        }
        Self { windows, exp_bits }
    }

    /// `base^exp` in Montgomery form. Panics if `exp` is wider than the
    /// table was built for.
    pub fn pow(&self, mont: &MontCtx, exp: &BigUint) -> Vec<u64> {
        assert!(
            exp.bits() <= self.exp_bits,
            "exponent wider than the fixed-base table"
        );
        let mut acc: Option<Vec<u64>> = None;
        for (w, row) in self.windows.iter().enumerate() {
            let d = digit4(exp, w);
            if d == 0 {
                continue;
            }
            acc = Some(match acc {
                Some(a) => mont.mont_mul(&a, &row[d]),
                None => row[d].clone(),
            });
        }
        acc.unwrap_or_else(|| mont.one_mont())
    }
}

/// The `w`-th little-endian 4-bit digit of `e`.
fn digit4(e: &BigUint, w: usize) -> usize {
    let bit = w * 4;
    let limbs = e.limbs();
    let lo = limbs.get(bit / 64).copied().unwrap_or(0) >> (bit % 64);
    let v = if bit % 64 > 60 {
        let hi = limbs.get(bit / 64 + 1).copied().unwrap_or(0);
        lo | (hi << (64 - bit % 64))
    } else {
        lo
    };
    (v & 0xf) as usize
}

/// Paillier secret key with CRT decryption precomputations.
#[derive(Clone, Debug)]
pub struct PaillierSk {
    /// Prime factor `p`.
    p: BigUint,
    /// Prime factor `q`.
    q: BigUint,
    /// Montgomery context mod `p^2`.
    mont_p2: MontCtx,
    /// Montgomery context mod `q^2`.
    mont_q2: MontCtx,
    /// `Lp((n+1)^{p-1} mod p^2)^{-1} mod p`.
    hp: BigUint,
    /// `Lq((n+1)^{q-1} mod q^2)^{-1} mod q`.
    hq: BigUint,
    /// `p^{-1} mod q` for CRT recombination.
    p_inv_q: BigUint,
    /// Copy of the public parameters.
    pk: Arc<PaillierPk>,
}

impl PaillierSk {
    /// Decrypt a Montgomery-form ciphertext to a ring element of `Z_n`
    /// via CRT (decrypting mod `p^2` and `q^2` separately — roughly 4×
    /// cheaper than the textbook `c^λ mod n^2`).
    pub fn raw_decrypt(&self, ct_mont: &[u64]) -> BigUint {
        let c = self.pk.mont.from_mont(ct_mont);
        let p = &self.p;
        let q = &self.q;
        // m_p = Lp(c^{p-1} mod p^2) * hp mod p
        let cp = c.rem(&self.mont_p2.m);
        let xp = self.mont_p2.pow(&cp, &p.sub_u64(1));
        let lp = xp.sub_u64(1).div_rem(p).0;
        let mp = lp.mod_mul(&self.hp, p);
        // m_q symmetric
        let cq = c.rem(&self.mont_q2.m);
        let xq = self.mont_q2.pow(&cq, &q.sub_u64(1));
        let lq = xq.sub_u64(1).div_rem(q).0;
        let mq = lq.mod_mul(&self.hq, q);
        // Garner: m = mp + p * ((mq - mp) * p^{-1} mod q)
        let diff = mq.mod_sub(&mp.rem(q), q);
        let t = diff.mod_mul(&self.p_inv_q, q);
        mp.add(&p.mul(&t))
    }

    /// Public parameters associated with this key.
    pub fn pk(&self) -> &Arc<PaillierPk> {
        &self.pk
    }

    /// The prime factors `(p, q)` (used by key serialization; every
    /// CRT precomputation is derivable from them).
    pub fn factors(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }
}

/// Rebuild a full secret key (all CRT precomputations) from its prime
/// factors, validating primality cheaply via the invertibility checks.
pub(crate) fn rebuild_secret(p: BigUint, q: BigUint, frac_bits: u32) -> Result<PaillierSk, String> {
    if p.is_even() || q.is_even() || p == q || p.bits() < 16 || q.bits() < 16 {
        return Err("invalid prime factors".to_string());
    }
    let n = p.mul(&q);
    let n2 = n.sqr();
    let mont = MontCtx::new(&n2);
    let half_n = n.shr(1);
    let key_bits = n.bits();
    let pk = Arc::new(PaillierPk {
        n: n.clone(),
        n2,
        mont,
        half_n,
        frac_bits,
        key_bits,
    });
    build_sk(p, q, pk).ok_or_else(|| "factors do not form a valid Paillier key".to_string())
}

/// Shared CRT setup used by keygen and deserialization.
fn build_sk(p: BigUint, q: BigUint, pk: Arc<PaillierPk>) -> Option<PaillierSk> {
    let p2 = p.sqr();
    let q2 = q.sqr();
    let mont_p2 = MontCtx::new(&p2);
    let mont_q2 = MontCtx::new(&q2);
    let g = pk.n.add_u64(1);
    let xp = mont_p2.pow(&g.rem(&p2), &p.sub_u64(1));
    let lp = xp.sub_u64(1).div_rem(&p).0;
    let hp = mod_inv(&lp, &p)?;
    let xq = mont_q2.pow(&g.rem(&q2), &q.sub_u64(1));
    let lq = xq.sub_u64(1).div_rem(&q).0;
    let hq = mod_inv(&lq, &q)?;
    let p_inv_q = mod_inv(&p, &q)?;
    Some(PaillierSk {
        p,
        q,
        mont_p2,
        mont_q2,
        hp,
        hq,
        p_inv_q,
        pk,
    })
}

/// A public key: real Paillier, or the identity `Plain` backend.
#[derive(Clone, Debug)]
pub enum PublicKey {
    /// Real Paillier public parameters.
    Paillier(Arc<PaillierPk>),
    /// Identity backend: "ciphertexts" are plaintext `f64`s. For tests
    /// and the lossless model-quality experiments only.
    Plain {
        /// Fixed-point quantisation applied on "encryption", so Plain
        /// runs reproduce the same quantisation error as real runs.
        frac_bits: u32,
    },
}

impl PublicKey {
    /// Fixed-point fractional bits of this key.
    pub fn frac_bits(&self) -> u32 {
        match self {
            PublicKey::Paillier(pk) => pk.frac_bits,
            PublicKey::Plain { frac_bits } => *frac_bits,
        }
    }

    /// True for the Plain (identity) backend.
    pub fn is_plain(&self) -> bool {
        matches!(self, PublicKey::Plain { .. })
    }
}

/// A secret key matching [`PublicKey`].
#[derive(Clone, Debug)]
pub enum SecretKey {
    /// Real Paillier secret key.
    Paillier(PaillierSk),
    /// Identity backend.
    Plain,
}

impl SecretKey {
    /// The matching public key.
    pub fn public(&self) -> PublicKey {
        match self {
            SecretKey::Paillier(sk) => PublicKey::Paillier(sk.pk.clone()),
            SecretKey::Plain => PublicKey::Plain {
                frac_bits: crate::DEFAULT_FRAC_BITS,
            },
        }
    }
}

/// Generate a Paillier key pair with an `key_bits`-bit modulus.
pub fn keygen<R: Rng + ?Sized>(
    key_bits: usize,
    frac_bits: u32,
    rng: &mut R,
) -> (PublicKey, SecretKey) {
    assert!(key_bits >= 64, "keygen: modulus too small");
    let half = key_bits / 2;
    let (p, q) = loop {
        let p = gen_prime(half, rng);
        let q = gen_prime(key_bits - half, rng);
        if p != q {
            // gcd(pq, (p-1)(q-1)) == 1 holds when p, q are distinct
            // primes of equal size; verify anyway.
            let n = p.mul(&q);
            let lambda = lcm(&p.sub_u64(1), &q.sub_u64(1));
            if bf_bigint::gcd(&n, &lambda).is_one() {
                break (p, q);
            }
        }
    };
    let n = p.mul(&q);
    let n2 = n.sqr();
    let mont = MontCtx::new(&n2);
    let half_n = n.shr(1);
    let pk = Arc::new(PaillierPk {
        n: n.clone(),
        n2,
        mont,
        half_n,
        frac_bits,
        key_bits,
    });

    let sk = build_sk(p, q, pk.clone()).expect("fresh primes form a valid key");
    (PublicKey::Paillier(pk), SecretKey::Paillier(sk))
}

/// Generate a Plain (identity) "key pair" for fast functional runs.
pub fn plain_keys(frac_bits: u32) -> (PublicKey, SecretKey) {
    (PublicKey::Plain { frac_bits }, SecretKey::Plain)
}

/// Encrypt/decrypt a single scalar — convenience used by tests.
pub fn encrypt_scalar(pk: &PublicKey, obf: &crate::Obfuscator, v: f64) -> ScalarCt {
    match pk {
        PublicKey::Paillier(p) => {
            let m = codec::encode(v, p.frac_bits, 1, &p.n);
            ScalarCt::Enc(p.raw_encrypt(&m, &obf.next_rn(p)))
        }
        PublicKey::Plain { .. } => ScalarCt::Plain(v),
    }
}

/// Decrypt a single scalar.
pub fn decrypt_scalar(sk: &SecretKey, ct: &ScalarCt) -> f64 {
    match (sk, ct) {
        (SecretKey::Paillier(s), ScalarCt::Enc(c)) => {
            let m = s.raw_decrypt(c);
            codec::decode(&m, s.pk.frac_bits, 1, &s.pk.n, &s.pk.half_n)
        }
        (SecretKey::Plain, ScalarCt::Plain(v)) => *v,
        _ => panic!("key/ciphertext backend mismatch"),
    }
}

/// A single ciphertext (test helper).
#[derive(Clone, Debug)]
pub enum ScalarCt {
    /// Paillier ciphertext in Montgomery form.
    Enc(Vec<u64>),
    /// Plain-backend "ciphertext": the value itself.
    Plain(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObfMode, Obfuscator};
    use rand::SeedableRng;

    fn setup() -> (PublicKey, SecretKey, Obfuscator) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let (pk, sk) = keygen(256, 24, &mut rng);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(8), 123);
        (pk, sk, obf)
    }

    #[test]
    fn scalar_roundtrip() {
        let (pk, sk, obf) = setup();
        for v in [0.0, 1.0, -1.0, 3.75, -123.456, 1e-5] {
            let ct = encrypt_scalar(&pk, &obf, v);
            let dec = decrypt_scalar(&sk, &ct);
            assert!((dec - v).abs() < 1e-6, "v={v} dec={dec}");
        }
    }

    #[test]
    fn ciphertexts_are_randomised() {
        let (pk, _, obf) = setup();
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let m = codec::encode(5.0, p.frac_bits, 1, &p.n);
        let c1 = p.raw_encrypt(&m, &obf.next_rn(p));
        let c2 = p.raw_encrypt(&m, &obf.next_rn(p));
        assert_ne!(c1, c2, "two encryptions of the same value must differ");
    }

    #[test]
    fn homomorphic_add_of_raw_cts() {
        let (pk, sk, obf) = setup();
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let SecretKey::Paillier(s) = &sk else {
            unreachable!()
        };
        let a = codec::encode(2.5, p.frac_bits, 1, &p.n);
        let b = codec::encode(-1.25, p.frac_bits, 1, &p.n);
        let ca = p.raw_encrypt(&a, &obf.next_rn(p));
        let cb = p.raw_encrypt(&b, &obf.next_rn(p));
        let sum = p.mont.mont_mul(&ca, &cb);
        let dec = codec::decode(&s.raw_decrypt(&sum), p.frac_bits, 1, &p.n, &p.half_n);
        assert!((dec - 1.25).abs() < 1e-6);
    }

    #[test]
    fn scalar_mult_via_pow() {
        let (pk, sk, obf) = setup();
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let SecretKey::Paillier(s) = &sk else {
            unreachable!()
        };
        let m = codec::encode(3.0, p.frac_bits, 1, &p.n);
        let c = p.raw_encrypt(&m, &obf.next_rn(p));
        // 7 * ⟦3⟧ (integer scalar) = ⟦21⟧
        let c7 = p.mont.pow_mont(&c, &bf_bigint::BigUint::from_u64(7));
        let dec = codec::decode(&s.raw_decrypt(&c7), p.frac_bits, 1, &p.n, &p.half_n);
        assert!((dec - 21.0).abs() < 1e-6);
    }

    #[test]
    fn plain_backend_roundtrip() {
        let (pk, sk) = plain_keys(32);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(2), 1);
        let ct = encrypt_scalar(&pk, &obf, -9.5);
        assert_eq!(decrypt_scalar(&sk, &ct), -9.5);
    }

    #[test]
    fn fixed_base_table_matches_pow_mont() {
        let (pk, _, _) = setup();
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let base = p.mont.to_mont(&BigUint::from_u64(0xfeed_beef).rem(&p.n2));
        let table = FixedBaseTable::new(&p.mont, &base, 256);
        for e in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from_u64(15),
            BigUint::from_u64(16),
            BigUint::from_u128(0xdead_beef_0123_4567_89ab_cdef),
            BigUint::one().shl(255).add_u64(0x1234_5678),
        ] {
            assert_eq!(
                table.pow(&p.mont, &e),
                p.mont.pow_mont(&base, &e),
                "exponent {e}"
            );
        }
    }

    #[test]
    fn deterministic_encrypt_decrypts() {
        let (pk, sk, _) = setup();
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let SecretKey::Paillier(s) = &sk else {
            unreachable!()
        };
        let m = codec::encode(-4.5, p.frac_bits, 1, &p.n);
        let c = p.raw_encrypt_deterministic(&m);
        let dec = codec::decode(&s.raw_decrypt(&c), p.frac_bits, 1, &p.n, &p.half_n);
        assert!((dec + 4.5).abs() < 1e-6);
    }
}
