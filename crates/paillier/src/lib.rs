//! Paillier additive homomorphic encryption and the CryptoTensor layer.
//!
//! This crate is the Rust counterpart of the paper's "Cryptography
//! Acceleration" layer (**§7.1**): a Paillier cryptosystem built on
//! `bf-bigint` (standing in for GMP) plus a [`CtMat`] abstraction — the
//! paper's *CryptoTensor* — supporting dense **and sparse** matrix
//! arithmetic over encrypted tensors, parallelised across cores (the
//! paper uses OpenMP; we use `crossbeam` scoped threads via `bf-util`).
//! It underpins the §4 federated source layers and the §5 secure
//! aggregation in `bf-mpc`/`blindfl`; the [`serial`] module owns the
//! byte layouts that keys and ciphertext tensors use on the wire
//! (`docs/WIRE_PROTOCOL.md`).
//!
//! # Key objects
//!
//! * [`PublicKey`] / [`SecretKey`] — either a real Paillier key pair or
//!   the [`Plain`](PublicKey::Plain) backend, an identity "encryption"
//!   used for fast functional testing and for the model-quality
//!   experiments (the protocols are lossless, so loss curves are
//!   identical under either backend; see DESIGN.md §3).
//! * [`Obfuscator`] — encryption randomness (`r^n mod n^2`), either
//!   generated exactly per encryption or drawn from a precomputed pool
//!   (products of pool entries are valid obfuscations; the pool strategy
//!   mirrors production Paillier deployments).
//! * [`CtMat`] — a matrix of ciphertexts kept in Montgomery form, with
//!   `X·⟦W⟧`, `Xᵀ·⟦G⟧` (sparse-aware), `⟦G⟧·Wᵀ`, embedding
//!   gather/scatter (`lkup` / `lkup_bw`), and homomorphic add/sub.
//! * [`pack`] — the packed fast path: multiple fixed-point values
//!   packed slot-wise into one plaintext so one ciphertext carries a
//!   whole column chunk ([`PaillierMode::Packed`]); decodes
//!   bit-identically to the scalar path (`docs/ARCHITECTURE.md`,
//!   "Packed crypto path").
//!
//! # Fixed-point encoding
//!
//! Plaintexts are `f64` scaled by `2^frac_bits` and embedded in `Z_n`
//! with the upper half of the ring representing negatives. A
//! plain-times-cipher product carries scale `2·frac_bits`; [`CtMat`]
//! tracks the scale and the decoder rescales on decryption.

#![warn(missing_docs)]
#![allow(clippy::large_enum_variant)] // ScalarCt test helper
pub mod codec;
pub mod ctmat;
pub mod keys;
pub mod obf;
pub mod pack;
pub mod serial;

pub use codec::{decode, encode, encode_exponent, SignedInt};
pub use ctmat::CtMat;
pub use keys::{keygen, FixedBaseTable, PaillierPk, PaillierSk, PublicKey, SecretKey};
pub use obf::{ObfMode, Obfuscator};
pub use pack::{
    pack_values, unpack_values, PackError, PackedCtMat, PaillierMode, SlotLayout, MAX_SLOT_BITS,
    SLOT_HEADROOM_BITS,
};
pub use serial::{
    export_ctmat, export_public, export_secret, import_ctmat, import_public, import_secret,
};

/// Default fixed-point fractional bits. With 512-bit-and-up moduli this
/// leaves ample headroom: a scale-2 payload occupies
/// `2*FRAC_BITS + magnitude + accumulation ≈ 96` bits.
pub const DEFAULT_FRAC_BITS: u32 = 32;

/// Default Paillier modulus size in bits for the experiment harnesses.
///
/// The paper uses production-size keys on a 2×96-core testbed; 512-bit
/// keys keep every harness on laptop-scale hardware while exercising the
/// identical code path (see DESIGN.md §5). Security-sensitive
/// deployments should use ≥ 2048.
pub const DEFAULT_KEY_BITS: usize = 512;
