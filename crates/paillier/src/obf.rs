//! Encryption randomness (`r^n mod n^2`) generation.
//!
//! Computing a fresh `r^n` is by far the most expensive part of a
//! Paillier encryption (a full-width exponentiation). Production
//! deployments — including the GMP-based system the paper describes —
//! amortise it; we support two strategies:
//!
//! * [`ObfMode::Exact`] — a fresh `r^n` per encryption (randomness
//!   derived from a per-call PRG seed so encryption can be
//!   data-parallel),
//! * [`ObfMode::Pool`] — precompute a pool of exact obfuscations in
//!   parallel at construction, then combine two random pool entries per
//!   encryption (the product of two valid obfuscations is a valid
//!   obfuscation). This trades full entropy for a large constant-factor
//!   speedup and is the default for the training-loop experiments.

use std::sync::atomic::{AtomicU64, Ordering};

use bf_bigint::{rng::random_coprime, BigUint};
use rand::SeedableRng;

use crate::keys::{PaillierPk, PublicKey};

/// Obfuscation generation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObfMode {
    /// Fresh `r^n` per encryption.
    Exact,
    /// Precomputed pool of the given size; each encryption multiplies
    /// two pseudo-randomly chosen entries.
    Pool(usize),
}

/// Thread-safe source of `r^n mod n^2` values in Montgomery form.
#[derive(Debug)]
pub struct Obfuscator {
    mode: ObfMode,
    seed: u64,
    ctr: AtomicU64,
    pool: Vec<Vec<u64>>,
}

impl Obfuscator {
    /// Build an obfuscator for the given key. For the Plain backend this
    /// is a no-op shell.
    pub fn new(pk: &PublicKey, mode: ObfMode, seed: u64) -> Self {
        let pool = match (pk, mode) {
            (PublicKey::Paillier(p), ObfMode::Pool(size)) => {
                assert!(size >= 2, "pool must have at least 2 entries");
                bf_util::par_map(size, |i| {
                    fresh_rn(p, splitmix(seed ^ (i as u64).wrapping_mul(0x9e37)))
                })
            }
            _ => Vec::new(),
        };
        Self {
            mode,
            seed,
            ctr: AtomicU64::new(0),
            pool,
        }
    }

    /// Next obfuscation value (Montgomery form) for the given key.
    pub fn next_rn(&self, pk: &PaillierPk) -> Vec<u64> {
        let i = self.ctr.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            ObfMode::Exact => fresh_rn(
                pk,
                splitmix(self.seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15))),
            ),
            ObfMode::Pool(size) => {
                let h = splitmix(self.seed ^ i.wrapping_mul(0xbf58476d1ce4e5b9));
                let a = (h % size as u64) as usize;
                let b = ((h >> 32) % size as u64) as usize;
                if a == b {
                    pk.mont.mont_sqr(&self.pool[a])
                } else {
                    pk.mont.mont_mul(&self.pool[a], &self.pool[b])
                }
            }
        }
    }

    /// Number of obfuscations drawn so far (diagnostics).
    pub fn drawn(&self) -> u64 {
        self.ctr.load(Ordering::Relaxed)
    }
}

/// One exact `r^n mod n^2` in Montgomery form, from a PRG seed.
fn fresh_rn(pk: &PaillierPk, seed: u64) -> Vec<u64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let r: BigUint = random_coprime(&mut rng, &pk.n);
    let r2 = r.rem(&pk.n2);
    pk.mont.pow_mont(&pk.mont.to_mont(&r2), &pk.n)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::keygen;
    use rand::SeedableRng;

    #[test]
    fn pool_entries_distinct_and_counted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (pk, _) = keygen(128, 16, &mut rng);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(4), 9);
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let a = obf.next_rn(p);
        let b = obf.next_rn(p);
        assert_ne!(a, b);
        assert_eq!(obf.drawn(), 2);
    }

    #[test]
    fn exact_mode_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let (pk, _) = keygen(128, 16, &mut rng);
        let obf = Obfuscator::new(&pk, ObfMode::Exact, 42);
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        assert_ne!(obf.next_rn(p), obf.next_rn(p));
    }

    #[test]
    fn obfuscations_are_encryptions_of_zero() {
        // r^n decrypts to 0, so multiplying a ciphertext by an
        // obfuscation re-randomises without changing the payload.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (pk, sk) = keygen(192, 16, &mut rng);
        let PublicKey::Paillier(p) = &pk else {
            unreachable!()
        };
        let crate::keys::SecretKey::Paillier(s) = &sk else {
            unreachable!()
        };
        let obf = Obfuscator::new(&pk, ObfMode::Pool(3), 11);
        for _ in 0..4 {
            let rn = obf.next_rn(p);
            assert!(s.raw_decrypt(&rn).is_zero());
        }
    }
}
