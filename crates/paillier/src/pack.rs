//! Slot-wise ciphertext packing: several fixed-point values per
//! Paillier plaintext.
//!
//! A Paillier plaintext is an element of `Z_n` — 512 bits in the
//! default configuration — while a single fixed-point payload needs
//! only ~100. Packing lays values out side by side in disjoint
//! bit-ranges ("slots") of one plaintext, so one ciphertext carries a
//! whole chunk of a matrix row and every homomorphic operation on it
//! (add = `mont_mul`, scalar-mult = `pow_mont`) processes all slots at
//! once. This is the batching idea production VFL systems use to
//! amortise HE cost; here it cuts the fig9/table5 crypto hot path by
//! the slot count (~4x at 512-bit keys, 32 fractional bits).
//!
//! # Slot layout and the headroom rule
//!
//! Each slot is `slot_bits = 2·frac_bits + SLOT_HEADROOM_BITS` wide:
//! `2·frac_bits` for a scale-2 (plain×cipher) payload and
//! [`SLOT_HEADROOM_BITS`] extra so row-count-many homomorphic additions
//! and the HE2SS masks cannot carry across a slot boundary. A slot
//! holds a *signed* value in `(-2^{slot_bits-1}, 2^{slot_bits-1})`;
//! the chunk is the single signed integer `P = Σ_j v_j · 2^{j·slot_bits}`
//! mapped into `Z_n` the same way the scalar codec maps one value
//! (negatives as `n - |P|`). Decoding adds the per-slot bias
//! `2^{slot_bits-1}` to every slot — making the integer non-negative
//! without inter-slot carries — and then reads plain base-`2^slot_bits`
//! digits.
//!
//! Packing is *disabled* (the scalar body is used) when the key is too
//! small to fit two slots, when `slot_bits` would exceed
//! [`MAX_SLOT_BITS`] (digit extraction uses `u128` arithmetic), or when
//! a matrix has fewer than two columns — the decision depends only on
//! shared configuration (key size, `frac_bits`, shape), never on the
//! values, so both parties always agree on it.
//!
//! Decoded values are **bit-identical** to the scalar path: slots are
//! encoded with the same [`codec::encode_exponent`] rounding and decoded
//! through the same `BigUint → f64` conversion, so `PaillierMode` never
//! changes a training trajectory (asserted by the parity suites).

use bf_bigint::BigUint;

use crate::codec;

/// Extra bits per slot beyond the scale-2 payload, absorbing
/// accumulation across a mini-batch's rows (`log2(rows)` bits), the
/// HE2SS mask magnitude, and a safety margin.
pub const SLOT_HEADROOM_BITS: u32 = 40;

/// Upper bound on `slot_bits`: slot digits are extracted into `u128`s,
/// and the signed value must fit an `i128`.
pub const MAX_SLOT_BITS: u32 = 120;

/// Ciphertext layout selector for the crypto hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaillierMode {
    /// One ciphertext per matrix element (the baseline layout).
    Scalar,
    /// One ciphertext per column chunk, `SlotLayout::slots` values each.
    Packed,
}

/// Slot geometry for a given key: how wide each slot is and how many
/// fit in one plaintext.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotLayout {
    /// Bits per slot (`2·frac_bits + SLOT_HEADROOM_BITS`).
    pub slot_bits: u32,
    /// Slots per ciphertext.
    pub slots: usize,
}

impl SlotLayout {
    /// Derive the packing geometry for a key, or `None` when packing is
    /// not viable (slot too wide for digit extraction, or fewer than
    /// two slots fit below the sign threshold `n/2`).
    pub fn for_key(key_bits: usize, frac_bits: u32) -> Option<SlotLayout> {
        let slot_bits = 2 * frac_bits + SLOT_HEADROOM_BITS;
        if slot_bits > MAX_SLOT_BITS {
            return None;
        }
        // The packed integer must stay below n/2 ≈ 2^(key_bits-1), so
        // keep the total strictly under key_bits - 2 bits.
        let usable = (key_bits as u32).saturating_sub(2);
        let slots = (usable / slot_bits) as usize;
        if slots < 2 {
            return None;
        }
        Some(SlotLayout { slot_bits, slots })
    }

    /// Exclusive bound on a slot's encoded magnitude: `2^(slot_bits-1)`.
    pub fn max_slot_mag(&self) -> u128 {
        1u128 << (self.slot_bits - 1)
    }
}

/// A value whose fixed-point encoding does not fit its slot.
#[derive(Clone, Debug, PartialEq)]
pub struct PackError {
    /// Slot index within the chunk.
    pub slot: usize,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value {} overflows its pack slot (index {})",
            self.value, self.slot
        )
    }
}

impl std::error::Error for PackError {}

/// Pack one chunk of values (`vals.len() <= layout.slots`) into a
/// `Z_n` plaintext at `scale` multiples of `frac_bits`.
///
/// Each value is quantised exactly as the scalar codec would quantise
/// it; a value whose magnitude reaches `2^(slot_bits-1)` is rejected.
pub fn pack_values(
    vals: &[f64],
    frac_bits: u32,
    scale: u8,
    layout: SlotLayout,
    n: &BigUint,
) -> Result<BigUint, PackError> {
    assert!(vals.len() <= layout.slots, "chunk wider than the layout");
    let shift = frac_bits * scale as u32;
    let mut pos = BigUint::zero();
    let mut neg = BigUint::zero();
    for (j, &v) in vals.iter().enumerate() {
        let e = codec::encode_exponent(v, shift);
        if e.mag.bits() >= layout.slot_bits as usize {
            return Err(PackError { slot: j, value: v });
        }
        if e.is_zero() {
            continue;
        }
        let shifted = e.mag.shl(j * layout.slot_bits as usize);
        if e.neg {
            neg = neg.add(&shifted);
        } else {
            pos = pos.add(&shifted);
        }
    }
    Ok(if pos >= neg {
        pos.sub(&neg)
    } else {
        n.sub(&neg.sub(&pos))
    })
}

/// Unpack `used` slots from a decrypted `Z_n` element, appending the
/// decoded values to `out`.
///
/// The ring element is first sign-recovered exactly like the scalar
/// decoder (`m > n/2` means negative), then the per-slot bias
/// `2^(slot_bits-1)` is added to every slot so plain digit extraction
/// applies. Each digit is converted through the same
/// `BigUint::to_f64 / 2^shift` path as the scalar decoder, keeping the
/// result bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn unpack_values(
    m: &BigUint,
    used: usize,
    frac_bits: u32,
    scale: u8,
    layout: SlotLayout,
    n: &BigUint,
    half_n: &BigUint,
    out: &mut Vec<f64>,
) {
    let w = layout.slot_bits as usize;
    let shift = (frac_bits * scale as u32) as f64;
    let (p_mag, p_neg) = if m > half_n {
        (n.sub(m), true)
    } else {
        (m.clone(), false)
    };
    let bias = slot_bias(layout.slot_bits, used);
    // Every slot value exceeds -2^(slot_bits-1), so biasing makes the
    // whole integer non-negative; a panic here means a slot overflowed
    // in homomorphic accumulation (the headroom rule was violated).
    let s = if p_neg {
        bias.sub(&p_mag)
    } else {
        bias.add(&p_mag)
    };
    let mask = (1u128 << w) - 1;
    let half = 1i128 << (w - 1);
    for j in 0..used {
        let d = (s.shr(j * w).low_u128() & mask) as i128;
        let v = d - half;
        let mag = BigUint::from_u128(v.unsigned_abs());
        let f = mag.to_f64() / shift.exp2();
        out.push(if v < 0 { -f } else { f });
    }
}

/// `Σ_{j<used} 2^(slot_bits-1) · 2^(j·slot_bits)` — the decode bias.
fn slot_bias(slot_bits: u32, used: usize) -> BigUint {
    let mut b = BigUint::zero();
    for j in 0..used {
        b = b.add(&BigUint::one().shl(slot_bits as usize - 1 + j * slot_bits as usize));
    }
    b
}

/// The packed body of a [`crate::CtMat`]: one ciphertext per column
/// chunk instead of per element.
///
/// Columns are grouped into *segments* of width `seg` (`cols % seg ==
/// 0`); each segment is split independently into
/// `ceil(seg / layout.slots)` chunks, so chunks never straddle a
/// segment boundary. Plain matrices have a single segment (`seg =
/// cols`); embedding tables use `seg = dim` so that `lkup`'s
/// concatenation of table rows preserves chunk alignment.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedCtMat {
    /// Limbs per ciphertext.
    pub(crate) k: usize,
    /// Slot geometry.
    pub(crate) layout: SlotLayout,
    /// Segment width in columns.
    pub(crate) seg: usize,
    /// Flat row-major ciphertext limbs: `rows × chunks` ciphertexts.
    pub(crate) limbs: Vec<u64>,
}

impl PackedCtMat {
    /// Chunks per segment.
    pub(crate) fn chunks_per_seg(&self) -> usize {
        self.seg.div_ceil(self.layout.slots)
    }

    /// Total chunks per row for a matrix of `cols` columns.
    pub(crate) fn chunks_total(&self, cols: usize) -> usize {
        debug_assert_eq!(cols % self.seg, 0, "cols must be whole segments");
        cols / self.seg * self.chunks_per_seg()
    }

    /// Number of used slots in chunk `c` (the last chunk of each
    /// segment may be partial).
    pub(crate) fn used_in_chunk(&self, c: usize) -> usize {
        let cc = c % self.chunks_per_seg();
        (self.seg - cc * self.layout.slots).min(self.layout.slots)
    }

    /// First column covered by chunk `c`.
    pub(crate) fn chunk_col0(&self, c: usize) -> usize {
        let cps = self.chunks_per_seg();
        (c / cps) * self.seg + (c % cps) * self.layout.slots
    }

    /// Ciphertext limbs of chunk `(i, c)` in a matrix of `cols` columns.
    pub(crate) fn entry(&self, cols: usize, i: usize, c: usize) -> &[u64] {
        let off = (i * self.chunks_total(cols) + c) * self.k;
        &self.limbs[off..off + self.k]
    }

    /// Slot geometry of this body.
    pub fn layout(&self) -> SlotLayout {
        self.layout
    }

    /// Segment width in columns.
    pub fn seg(&self) -> usize {
        self.seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n512() -> BigUint {
        BigUint::one().shl(512).sub_u64(569)
    }

    #[test]
    fn layout_follows_headroom_rule() {
        let l = SlotLayout::for_key(512, 32).unwrap();
        assert_eq!(l.slot_bits, 104);
        assert_eq!(l.slots, 4);
        let l = SlotLayout::for_key(256, 24).unwrap();
        assert_eq!(l.slot_bits, 88);
        assert_eq!(l.slots, 2);
        // Too-wide slots (frac_bits > 40) and too-small keys disable
        // packing rather than shrinking the headroom.
        assert!(SlotLayout::for_key(512, 41).is_none());
        assert!(SlotLayout::for_key(128, 32).is_none());
    }

    #[test]
    fn pack_unpack_roundtrip_signed() {
        let n = n512();
        let half = n.shr(1);
        let l = SlotLayout::for_key(512, 32).unwrap();
        let vals = [1.5, -2.75, 0.0, -1234.0625];
        let m = pack_values(&vals, 32, 1, l, &n).unwrap();
        let mut out = Vec::new();
        unpack_values(&m, vals.len(), 32, 1, l, &n, &half, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn packed_add_is_slotwise() {
        let n = n512();
        let half = n.shr(1);
        let l = SlotLayout::for_key(512, 32).unwrap();
        let a = [1.5, -2.0, 3.25];
        let b = [-4.5, 0.5, -3.25];
        let ma = pack_values(&a, 32, 1, l, &n).unwrap();
        let mb = pack_values(&b, 32, 1, l, &n).unwrap();
        let sum = ma.mod_add(&mb, &n);
        let mut out = Vec::new();
        unpack_values(&sum, 3, 32, 1, l, &n, &half, &mut out);
        assert_eq!(out, [-3.0, -1.5, 0.0]);
    }

    #[test]
    fn slot_overflow_rejected() {
        let n = n512();
        let l = SlotLayout::for_key(512, 32).unwrap();
        // 2^40 * 2^32 = 2^72 fits a 104-bit slot; 2^72 * 2^32 does not.
        assert!(pack_values(&[(40f64).exp2()], 32, 1, l, &n).is_ok());
        let err = pack_values(&[1.0, (72f64).exp2()], 32, 1, l, &n).unwrap_err();
        assert_eq!(err.slot, 1);
    }

    #[test]
    fn chunk_geometry() {
        let p = PackedCtMat {
            k: 1,
            layout: SlotLayout {
                slot_bits: 100,
                slots: 4,
            },
            seg: 6,
            limbs: Vec::new(),
        };
        assert_eq!(p.chunks_per_seg(), 2);
        assert_eq!(p.chunks_total(12), 4);
        assert_eq!(p.used_in_chunk(0), 4);
        assert_eq!(p.used_in_chunk(1), 2);
        assert_eq!(p.chunk_col0(2), 6);
        assert_eq!(p.chunk_col0(3), 10);
    }
}
