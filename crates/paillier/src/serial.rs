//! Serialization of key material and ciphertext tensors.
//!
//! Two byte-level formats live here:
//!
//! * **Keys** — colon-separated lowercase hex fields with a
//!   version/type prefix, e.g. `bfpk1:<frac_bits>:<n>` and
//!   `bfsk1:<frac_bits>:<p>:<q>`. The paper's deployment exchanges
//!   public keys at initialisation; a production system also needs
//!   durable secret-key storage at each party.
//! * **[`CtMat`]** — the binary encoding used as the `Ct` payload of
//!   the wire protocol (see `docs/WIRE_PROTOCOL.md` at the repository
//!   root): header `rows u64 LE | cols u64 LE | scale u8 | body u8`,
//!   followed by `rows·cols` IEEE-754 `f64` LE values (body `0`,
//!   Plain backend) or `k u64 LE` plus `rows·cols·k` Montgomery-form
//!   limbs as `u64` LE (body `1`, Paillier backend). Ciphertext limbs
//!   travel verbatim: both parties interpret them against the same
//!   public modulus, so no Montgomery-domain conversion is needed.
//!   Body `2` is a *packed* Paillier tensor: the sub-header
//!   `k u64 | slot_bits u64 | slots u64 | seg u64` (all LE) followed
//!   by `rows · chunks · k` limbs, where `chunks = (cols/seg) ·
//!   ceil(seg/slots)` — one ciphertext per column chunk rather than
//!   per element (see `crate::pack` and `docs/WIRE_PROTOCOL.md`).

use std::sync::Arc;

use bf_bigint::BigUint;

use crate::ctmat::BodyView;
use crate::keys::{PaillierPk, PublicKey, SecretKey};
use crate::CtMat;

/// Serialize a public key.
pub fn export_public(pk: &PublicKey) -> String {
    match pk {
        PublicKey::Paillier(p) => format!("bfpk1:{}:{}", p.frac_bits, p.n.to_hex()),
        PublicKey::Plain { frac_bits } => format!("bfplain1:{frac_bits}"),
    }
}

/// Deserialize a public key.
pub fn import_public(s: &str) -> Result<PublicKey, String> {
    let mut parts = s.split(':');
    match parts.next() {
        Some("bfpk1") => {
            let frac_bits: u32 = parse_field(parts.next(), "frac_bits")?;
            let n = parse_hex(parts.next(), "n")?;
            if parts.next().is_some() {
                return Err("trailing fields".into());
            }
            Ok(PublicKey::Paillier(Arc::new(rebuild_pk(n, frac_bits))))
        }
        Some("bfplain1") => {
            let frac_bits: u32 = parse_field(parts.next(), "frac_bits")?;
            Ok(PublicKey::Plain { frac_bits })
        }
        other => Err(format!("unknown key type {other:?}")),
    }
}

/// Serialize a secret key. **Handle with care** — this string decrypts
/// everything encrypted under the matching public key.
pub fn export_secret(sk: &SecretKey) -> String {
    match sk {
        SecretKey::Paillier(s) => {
            let (p, q) = s.factors();
            format!("bfsk1:{}:{}:{}", s.pk().frac_bits, p.to_hex(), q.to_hex())
        }
        SecretKey::Plain => "bfplainsk1".to_string(),
    }
}

/// Deserialize a secret key (rebuilding all CRT precomputations).
pub fn import_secret(s: &str) -> Result<SecretKey, String> {
    let mut parts = s.split(':');
    match parts.next() {
        Some("bfsk1") => {
            let frac_bits: u32 = parse_field(parts.next(), "frac_bits")?;
            let p = parse_hex(parts.next(), "p")?;
            let q = parse_hex(parts.next(), "q")?;
            if parts.next().is_some() {
                return Err("trailing fields".into());
            }
            crate::keys::rebuild_secret(p, q, frac_bits).map(SecretKey::Paillier)
        }
        Some("bfplainsk1") => Ok(SecretKey::Plain),
        other => Err(format!("unknown key type {other:?}")),
    }
}

/// [`CtMat`] body tag: Plain backend (`f64` values follow).
const CT_BODY_PLAIN: u8 = 0;
/// [`CtMat`] body tag: Paillier backend (limb count + limbs follow).
const CT_BODY_ENC: u8 = 1;
/// [`CtMat`] body tag: packed Paillier backend (slot layout + limbs).
const CT_BODY_PACKED: u8 = 2;

/// Serialize a ciphertext tensor to the canonical byte layout (the
/// `Ct` wire payload).
pub fn export_ctmat(ct: &CtMat) -> Vec<u8> {
    let (rows, cols) = ct.shape();
    let mut out = Vec::with_capacity(18 + 8 * rows * cols);
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(cols as u64).to_le_bytes());
    out.push(ct.scale());
    match ct.body_view() {
        BodyView::Plain(vals) => {
            out.push(CT_BODY_PLAIN);
            for v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        BodyView::Enc { k, limbs } => {
            out.push(CT_BODY_ENC);
            out.extend_from_slice(&(k as u64).to_le_bytes());
            for l in limbs {
                out.extend_from_slice(&l.to_le_bytes());
            }
        }
        BodyView::Packed {
            k,
            layout,
            seg,
            limbs,
        } => {
            out.push(CT_BODY_PACKED);
            out.extend_from_slice(&(k as u64).to_le_bytes());
            out.extend_from_slice(&(layout.slot_bits as u64).to_le_bytes());
            out.extend_from_slice(&(layout.slots as u64).to_le_bytes());
            out.extend_from_slice(&(seg as u64).to_le_bytes());
            for l in limbs {
                out.extend_from_slice(&l.to_le_bytes());
            }
        }
    }
    out
}

/// Deserialize a ciphertext tensor, validating every length field
/// (malformed input yields `Err`, never a panic or over-allocation).
pub fn import_ctmat(bytes: &[u8]) -> Result<CtMat, String> {
    let take_u64 = |off: usize| -> Result<u64, String> {
        let end = off.checked_add(8).ok_or("offset overflow")?;
        let s = bytes.get(off..end).ok_or("truncated ctmat header")?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    };
    let rows = usize::try_from(take_u64(0)?).map_err(|_| "rows overflow")?;
    let cols = usize::try_from(take_u64(8)?).map_err(|_| "cols overflow")?;
    let scale = *bytes.get(16).ok_or("truncated ctmat header")?;
    let body = *bytes.get(17).ok_or("truncated ctmat header")?;
    let n = rows.checked_mul(cols).ok_or("rows*cols overflow")?;
    match body {
        CT_BODY_PLAIN => {
            let want = n.checked_mul(8).ok_or("plain length overflow")?;
            let data = bytes.get(18..).ok_or("truncated ctmat body")?;
            if data.len() != want {
                return Err(format!("plain body length {} != {want}", data.len()));
            }
            let vals = data
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(CtMat::from_plain_parts(rows, cols, scale, vals))
        }
        CT_BODY_ENC => {
            let k = usize::try_from(take_u64(18)?).map_err(|_| "limb count overflow")?;
            let want = n
                .checked_mul(k)
                .and_then(|t| t.checked_mul(8))
                .ok_or("enc length overflow")?;
            let data = bytes.get(26..).ok_or("truncated ctmat body")?;
            if data.len() != want {
                return Err(format!("enc body length {} != {want}", data.len()));
            }
            if n > 0 && k == 0 {
                return Err("zero limbs per ciphertext".into());
            }
            let limbs = data
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(CtMat::from_enc_parts(rows, cols, scale, k, limbs))
        }
        CT_BODY_PACKED => {
            let k = usize::try_from(take_u64(18)?).map_err(|_| "limb count overflow")?;
            let slot_bits = take_u64(26)?;
            let slots = usize::try_from(take_u64(34)?).map_err(|_| "slots overflow")?;
            let seg = usize::try_from(take_u64(42)?).map_err(|_| "seg overflow")?;
            // Validate the layout fields *before* any chunk arithmetic:
            // division by zero or absurd widths must yield Err.
            if k == 0 {
                return Err("zero limbs per ciphertext".into());
            }
            if slots == 0 {
                return Err("zero slots per ciphertext".into());
            }
            if slot_bits == 0 || slot_bits > crate::pack::MAX_SLOT_BITS as u64 {
                return Err(format!("slot width {slot_bits} out of range"));
            }
            if seg == 0 || cols % seg != 0 {
                return Err(format!("segment width {seg} does not divide cols {cols}"));
            }
            let chunks = (cols / seg)
                .checked_mul(seg.div_ceil(slots))
                .ok_or("chunk count overflow")?;
            let want = rows
                .checked_mul(chunks)
                .and_then(|t| t.checked_mul(k))
                .and_then(|t| t.checked_mul(8))
                .ok_or("packed length overflow")?;
            let data = bytes.get(50..).ok_or("truncated ctmat body")?;
            if data.len() != want {
                return Err(format!("packed body length {} != {want}", data.len()));
            }
            let limbs = data
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let layout = crate::pack::SlotLayout {
                slot_bits: slot_bits as u32,
                slots,
            };
            Ok(CtMat::from_packed_parts(
                rows, cols, scale, k, layout, seg, limbs,
            ))
        }
        other => Err(format!("unknown ctmat body tag {other}")),
    }
}

fn parse_field<T: std::str::FromStr>(f: Option<&str>, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    f.ok_or_else(|| format!("missing {name}"))?
        .parse()
        .map_err(|e| format!("bad {name}: {e}"))
}

fn parse_hex(f: Option<&str>, name: &str) -> Result<BigUint, String> {
    BigUint::from_hex(f.ok_or_else(|| format!("missing {name}"))?)
        .ok_or_else(|| format!("bad hex in {name}"))
}

fn rebuild_pk(n: BigUint, frac_bits: u32) -> PaillierPk {
    let n2 = n.sqr();
    let mont = bf_bigint::MontCtx::new(&n2);
    let half_n = n.shr(1);
    let key_bits = n.bits();
    PaillierPk {
        n,
        n2,
        mont,
        half_n,
        frac_bits,
        key_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::keygen;
    use crate::{ObfMode, Obfuscator};
    use bf_tensor::Dense;
    use rand::SeedableRng;

    #[test]
    fn public_key_roundtrip_interoperates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (pk, sk) = keygen(256, 24, &mut rng);
        let pk2 = import_public(&export_public(&pk)).unwrap();
        // Encrypt under the re-imported key; decrypt with the original sk.
        let obf = Obfuscator::new(&pk2, ObfMode::Pool(4), 2);
        let m = Dense::from_vec(1, 3, vec![1.5, -2.0, 10.25]);
        let ct = pk2.encrypt(&m, &obf);
        assert!(sk.decrypt(&ct).approx_eq(&m, 1e-5));
    }

    #[test]
    fn secret_key_roundtrip_decrypts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (pk, sk) = keygen(256, 24, &mut rng);
        let sk2 = import_secret(&export_secret(&sk)).unwrap();
        let obf = Obfuscator::new(&pk, ObfMode::Pool(4), 4);
        let m = Dense::from_vec(2, 2, vec![0.5, -0.5, 3.25, -7.0]);
        let ct = pk.encrypt(&m, &obf);
        assert!(sk2.decrypt(&ct).approx_eq(&m, 1e-5));
    }

    #[test]
    fn plain_keys_roundtrip() {
        let pk = PublicKey::Plain { frac_bits: 20 };
        let got = import_public(&export_public(&pk)).unwrap();
        assert!(matches!(got, PublicKey::Plain { frac_bits: 20 }));
        let sk = import_secret(&export_secret(&SecretKey::Plain)).unwrap();
        assert!(matches!(sk, SecretKey::Plain));
    }

    #[test]
    fn rejects_garbage() {
        assert!(import_public("nonsense").is_err());
        assert!(import_public("bfpk1:abc:xyz").is_err());
        assert!(import_secret("bfsk1:24:ff").is_err()); // missing q
        assert!(import_public("bfpk1:24:ff:extra").is_err());
    }

    #[test]
    fn ctmat_paillier_roundtrip_decrypts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (pk, sk) = keygen(256, 24, &mut rng);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(4), 6);
        let m = Dense::from_vec(2, 3, vec![1.0, -2.5, 0.0, 7.25, -0.125, 3.0]);
        let ct = pk.encrypt(&m, &obf);
        let ct2 = import_ctmat(&export_ctmat(&ct)).unwrap();
        assert_eq!(ct, ct2);
        assert!(sk.decrypt(&ct2).approx_eq(&m, 1e-5));
    }

    #[test]
    fn ctmat_plain_and_empty_roundtrip() {
        let (pk, _) = crate::keys::plain_keys(20);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(2), 0);
        let m = Dense::from_vec(1, 2, vec![0.5, -4.0]);
        let ct = pk.encrypt(&m, &obf);
        assert_eq!(import_ctmat(&export_ctmat(&ct)).unwrap(), ct);
        // Empty matrix (0 rows) survives too.
        let empty = pk.encrypt(&Dense::zeros(0, 3), &obf);
        assert_eq!(import_ctmat(&export_ctmat(&empty)).unwrap(), empty);
    }

    #[test]
    fn ctmat_packed_roundtrip_decrypts() {
        use crate::pack::PaillierMode;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (pk, sk) = keygen(256, 20, &mut rng);
        let obf = Obfuscator::new(&pk, ObfMode::Pool(4), 6);
        let m = Dense::from_vec(2, 4, vec![1.0, -2.5, 0.0, 7.25, -0.125, 3.0, 4.5, -6.0]);
        let ct = pk.encrypt_mode(&m, PaillierMode::Packed, &obf);
        assert!(ct.is_packed());
        let ct2 = import_ctmat(&export_ctmat(&ct)).unwrap();
        assert_eq!(ct, ct2);
        assert_eq!(sk.decrypt(&ct2), sk.decrypt(&ct));
    }

    #[test]
    fn ctmat_rejects_malformed_packed_bytes() {
        // A syntactically valid packed header template: 2×4, scale 1.
        let header = |k: u64, slot_bits: u64, slots: u64, seg: u64| {
            let mut b = Vec::new();
            b.extend_from_slice(&2u64.to_le_bytes());
            b.extend_from_slice(&4u64.to_le_bytes());
            b.push(1);
            b.push(2); // packed body
            b.extend_from_slice(&k.to_le_bytes());
            b.extend_from_slice(&slot_bits.to_le_bytes());
            b.extend_from_slice(&slots.to_le_bytes());
            b.extend_from_slice(&seg.to_le_bytes());
            b
        };
        // Zero slots / zero slot_bits / zero seg: must not divide by zero.
        assert!(import_ctmat(&header(8, 80, 0, 4)).is_err());
        assert!(import_ctmat(&header(8, 0, 3, 4)).is_err());
        assert!(import_ctmat(&header(8, 80, 3, 0)).is_err());
        assert!(import_ctmat(&header(0, 80, 3, 4)).is_err());
        // slot_bits beyond the digit-extraction limit.
        assert!(import_ctmat(&header(8, 500, 3, 4)).is_err());
        // seg does not divide cols.
        assert!(import_ctmat(&header(8, 80, 3, 3)).is_err());
        // Correct header but truncated limb data.
        let mut b = header(8, 80, 3, 4);
        b.extend_from_slice(&[0u8; 8]);
        assert!(import_ctmat(&b).is_err());
    }

    #[test]
    fn ctmat_rejects_malformed_bytes() {
        assert!(import_ctmat(&[]).is_err());
        assert!(import_ctmat(&[0; 17]).is_err());
        // Plausible header, wrong body length.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.push(1); // scale
        bytes.push(0); // plain body
        bytes.extend_from_slice(&[0u8; 8]); // 1 value instead of 4
        assert!(import_ctmat(&bytes).is_err());
        // Unknown body tag.
        let mut bytes = vec![0u8; 18];
        bytes[17] = 9;
        assert!(import_ctmat(&bytes).is_err());
        // Huge claimed dimensions must not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.push(1);
        bytes.push(0);
        assert!(import_ctmat(&bytes).is_err());
    }
}
