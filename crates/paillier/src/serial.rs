//! Key serialization — hex export/import for persisting and
//! distributing key material (the paper's deployment exchanges public
//! keys at initialisation; a production system also needs durable
//! secret-key storage at each party).
//!
//! Format: colon-separated lowercase hex fields with a version/type
//! prefix, e.g. `bfpk1:<frac_bits>:<n>` and `bfsk1:<frac_bits>:<p>:<q>`.

use std::sync::Arc;

use bf_bigint::BigUint;

use crate::keys::{PaillierPk, PublicKey, SecretKey};

/// Serialize a public key.
pub fn export_public(pk: &PublicKey) -> String {
    match pk {
        PublicKey::Paillier(p) => format!("bfpk1:{}:{}", p.frac_bits, p.n.to_hex()),
        PublicKey::Plain { frac_bits } => format!("bfplain1:{frac_bits}"),
    }
}

/// Deserialize a public key.
pub fn import_public(s: &str) -> Result<PublicKey, String> {
    let mut parts = s.split(':');
    match parts.next() {
        Some("bfpk1") => {
            let frac_bits: u32 = parse_field(parts.next(), "frac_bits")?;
            let n = parse_hex(parts.next(), "n")?;
            if parts.next().is_some() {
                return Err("trailing fields".into());
            }
            Ok(PublicKey::Paillier(Arc::new(rebuild_pk(n, frac_bits))))
        }
        Some("bfplain1") => {
            let frac_bits: u32 = parse_field(parts.next(), "frac_bits")?;
            Ok(PublicKey::Plain { frac_bits })
        }
        other => Err(format!("unknown key type {other:?}")),
    }
}

/// Serialize a secret key. **Handle with care** — this string decrypts
/// everything encrypted under the matching public key.
pub fn export_secret(sk: &SecretKey) -> String {
    match sk {
        SecretKey::Paillier(s) => {
            let (p, q) = s.factors();
            format!("bfsk1:{}:{}:{}", s.pk().frac_bits, p.to_hex(), q.to_hex())
        }
        SecretKey::Plain => "bfplainsk1".to_string(),
    }
}

/// Deserialize a secret key (rebuilding all CRT precomputations).
pub fn import_secret(s: &str) -> Result<SecretKey, String> {
    let mut parts = s.split(':');
    match parts.next() {
        Some("bfsk1") => {
            let frac_bits: u32 = parse_field(parts.next(), "frac_bits")?;
            let p = parse_hex(parts.next(), "p")?;
            let q = parse_hex(parts.next(), "q")?;
            if parts.next().is_some() {
                return Err("trailing fields".into());
            }
            crate::keys::rebuild_secret(p, q, frac_bits).map(SecretKey::Paillier)
        }
        Some("bfplainsk1") => Ok(SecretKey::Plain),
        other => Err(format!("unknown key type {other:?}")),
    }
}

fn parse_field<T: std::str::FromStr>(f: Option<&str>, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    f.ok_or_else(|| format!("missing {name}"))?
        .parse()
        .map_err(|e| format!("bad {name}: {e}"))
}

fn parse_hex(f: Option<&str>, name: &str) -> Result<BigUint, String> {
    BigUint::from_hex(f.ok_or_else(|| format!("missing {name}"))?)
        .ok_or_else(|| format!("bad hex in {name}"))
}

fn rebuild_pk(n: BigUint, frac_bits: u32) -> PaillierPk {
    let n2 = n.sqr();
    let mont = bf_bigint::MontCtx::new(&n2);
    let half_n = n.shr(1);
    let key_bits = n.bits();
    PaillierPk {
        n,
        n2,
        mont,
        half_n,
        frac_bits,
        key_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::keygen;
    use crate::{ObfMode, Obfuscator};
    use bf_tensor::Dense;
    use rand::SeedableRng;

    #[test]
    fn public_key_roundtrip_interoperates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (pk, sk) = keygen(256, 24, &mut rng);
        let pk2 = import_public(&export_public(&pk)).unwrap();
        // Encrypt under the re-imported key; decrypt with the original sk.
        let obf = Obfuscator::new(&pk2, ObfMode::Pool(4), 2);
        let m = Dense::from_vec(1, 3, vec![1.5, -2.0, 10.25]);
        let ct = pk2.encrypt(&m, &obf);
        assert!(sk.decrypt(&ct).approx_eq(&m, 1e-5));
    }

    #[test]
    fn secret_key_roundtrip_decrypts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (pk, sk) = keygen(256, 24, &mut rng);
        let sk2 = import_secret(&export_secret(&sk)).unwrap();
        let obf = Obfuscator::new(&pk, ObfMode::Pool(4), 4);
        let m = Dense::from_vec(2, 2, vec![0.5, -0.5, 3.25, -7.0]);
        let ct = pk.encrypt(&m, &obf);
        assert!(sk2.decrypt(&ct).approx_eq(&m, 1e-5));
    }

    #[test]
    fn plain_keys_roundtrip() {
        let pk = PublicKey::Plain { frac_bits: 20 };
        let got = import_public(&export_public(&pk)).unwrap();
        assert!(matches!(got, PublicKey::Plain { frac_bits: 20 }));
        let sk = import_secret(&export_secret(&SecretKey::Plain)).unwrap();
        assert!(matches!(sk, SecretKey::Plain));
    }

    #[test]
    fn rejects_garbage() {
        assert!(import_public("nonsense").is_err());
        assert!(import_public("bfpk1:abc:xyz").is_err());
        assert!(import_secret("bfsk1:24:ff").is_err()); // missing q
        assert!(import_public("bfpk1:24:ff:extra").is_err());
    }
}
