//! Property tests for slot-wise packing: pack/unpack round-trips
//! across shapes (0-row, 1×1, max frac_bits), slot-overflow rejection,
//! and the packed ciphertext-tensor codec (golden bytes + corruption
//! fuzz, mirroring the wire_prop suite in bf-mpc).

use bf_paillier::{
    export_ctmat, import_ctmat, keygen, pack_values, unpack_values, ObfMode, Obfuscator,
    PaillierMode, PublicKey, SlotLayout,
};
use bf_tensor::Dense;
use proptest::prelude::*;
use rand::SeedableRng;

fn paillier(key_bits: usize, frac_bits: u32) -> (PublicKey, bf_paillier::SecretKey, Obfuscator) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF ^ key_bits as u64);
    let (pk, sk) = keygen(key_bits, frac_bits, &mut rng);
    let obf = Obfuscator::new(&pk, ObfMode::Pool(4), 3);
    (pk, sk, obf)
}

/// Fixed-point grid values that survive the codec exactly, so the
/// round-trip can assert bit-equality rather than a tolerance.
fn grid_vals(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (-(1i64 << 20)..(1i64 << 20)).prop_map(|q| q as f64 / 256.0),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_roundtrips(vals in grid_vals(3), used in 1usize..=3) {
        let (pk, _, _) = paillier(256, 20);
        let PublicKey::Paillier(p) = &pk else { unreachable!() };
        let layout = SlotLayout::for_key(p.key_bits, p.frac_bits).unwrap();
        prop_assume!(used <= layout.slots);
        let chunk = &vals[..used];
        let m = pack_values(chunk, p.frac_bits, 1, layout, &p.n).unwrap();
        let mut out = Vec::new();
        unpack_values(&m, used, p.frac_bits, 1, layout, &p.n, &p.half_n, &mut out);
        prop_assert_eq!(out, chunk.to_vec());
    }

    #[test]
    fn packed_tensor_roundtrips_any_shape(
        rows in 0usize..=4,
        cols in 2usize..=6,
        vals in grid_vals(24),
    ) {
        // Includes 0-row tensors; 1×1 and other unpackable shapes are
        // covered by the fallback test below.
        let (pk, sk, obf) = paillier(256, 20);
        let m = Dense::from_vec(rows, cols, vals[..rows * cols].to_vec());
        let cs = pk.encrypt(&m, &obf);
        let cp = pk.encrypt_mode(&m, PaillierMode::Packed, &obf);
        let (dp, ds) = (sk.decrypt(&cp), sk.decrypt(&cs));
        prop_assert_eq!(dp.data(), ds.data());
    }

    #[test]
    fn corrupted_packed_bytes_never_panic(flip in 0usize..256, bit in 0u8..8) {
        let (pk, _, obf) = paillier(256, 20);
        let m = Dense::from_vec(2, 4, vec![1.0, -2.0, 3.0, -4.0, 5.5, -6.5, 7.0, 0.0]);
        let mut bytes = export_ctmat(&pk.encrypt_mode(&m, PaillierMode::Packed, &obf));
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = import_ctmat(&bytes);
    }
}

#[test]
fn max_frac_bits_layout_roundtrips() {
    // frac 40 → 120-bit slots, the digit-extraction ceiling; a 256-bit
    // key still fits 2 slots.
    let (pk, sk, obf) = paillier(256, 40);
    let PublicKey::Paillier(p) = &pk else {
        unreachable!()
    };
    let layout = SlotLayout::for_key(p.key_bits, p.frac_bits).unwrap();
    assert_eq!((layout.slot_bits, layout.slots), (120, 2));
    assert!(SlotLayout::for_key(256, 41).is_none(), "slot width > 120");

    let m = Dense::from_vec(1, 4, vec![0.5, -0.25, 3.75, -1.0]);
    let cp = pk.encrypt_mode(&m, PaillierMode::Packed, &obf);
    assert!(cp.is_packed());
    let cs = pk.encrypt(&m, &obf);
    assert_eq!(sk.decrypt(&cp).data(), sk.decrypt(&cs).data());
}

#[test]
fn one_by_one_falls_back_to_scalar() {
    let (pk, sk, obf) = paillier(256, 20);
    let m = Dense::from_vec(1, 1, vec![-7.5]);
    let ct = pk.encrypt_mode(&m, PaillierMode::Packed, &obf);
    assert!(!ct.is_packed());
    assert!(sk.decrypt(&ct).approx_eq(&m, 1e-4));
}

#[test]
fn slot_overflow_rejected_not_wrapped() {
    let (pk, _, _) = paillier(256, 20);
    let PublicKey::Paillier(p) = &pk else {
        unreachable!()
    };
    let layout = SlotLayout::for_key(p.key_bits, p.frac_bits).unwrap();
    // 80-bit slots at frac 20: magnitudes below 2^59 fit, 2^60 does not
    // (encoded magnitude reaches 2^80 > slot_bits − 1 sign headroom).
    let ok = (1u64 << 39) as f64;
    assert!(pack_values(&[ok, -ok], p.frac_bits, 1, layout, &p.n).is_ok());
    let too_big = (1u64 << 60) as f64;
    let err = pack_values(&[0.0, too_big], p.frac_bits, 1, layout, &p.n).unwrap_err();
    assert_eq!(err.slot, 1);
    assert_eq!(err.value, too_big);
}

#[test]
fn packed_codec_golden_bytes() {
    // The documented byte layout for a packed ciphertext tensor (wire
    // protocol v3, `Ct` body tag 2): changing any byte here is a
    // protocol break and requires a wire VERSION bump.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1u64.to_le_bytes()); // rows
    bytes.extend_from_slice(&4u64.to_le_bytes()); // cols
    bytes.push(1); // scale
    bytes.push(2); // body tag: packed
    bytes.extend_from_slice(&2u64.to_le_bytes()); // k (limbs per ct)
    bytes.extend_from_slice(&80u64.to_le_bytes()); // slot_bits
    bytes.extend_from_slice(&3u64.to_le_bytes()); // slots
    bytes.extend_from_slice(&4u64.to_le_bytes()); // seg
                                                  // 1 row × ceil(4/3)=2 chunks × 2 limbs.
    for l in [
        0x0102030405060708u64,
        0x1112131415161718,
        0xA1A2A3A4A5A6A7A8,
        0,
    ] {
        bytes.extend_from_slice(&l.to_le_bytes());
    }
    let ct = import_ctmat(&bytes).expect("golden packed bytes decode");
    assert!(ct.is_packed());
    assert_eq!(ct.shape(), (1, 4));
    assert_eq!(ct.scale(), 1);
    assert_eq!(export_ctmat(&ct), bytes, "export is byte-identical");
}
