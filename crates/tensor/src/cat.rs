//! Categorical feature blocks for the Embed-MatMul source layer.
//!
//! A [`CatBlock`] holds, for each instance, one categorical index per
//! field. All fields share a single embedding table; field `f`'s values
//! are offset into the table by `field_offsets[f]`, exactly like the
//! fused embedding tables of DLRM-style systems.

/// Categorical features: `rows` instances × `fields` categorical fields.
#[derive(Clone, Debug, PartialEq)]
pub struct CatBlock {
    rows: usize,
    fields: usize,
    /// Row-major *global* indices into the shared embedding table,
    /// length `rows * fields`.
    indices: Vec<u32>,
    /// Per-field starting offset in the shared table; `field_offsets[f]
    /// ..field_offsets[f] + vocab[f]` is field `f`'s slice.
    field_offsets: Vec<u32>,
    /// Total vocabulary (number of rows of the shared embedding table).
    vocab: usize,
}

impl CatBlock {
    /// Build from per-field *local* indices (`local[r][f] < vocab_sizes[f]`).
    pub fn from_local(rows: usize, vocab_sizes: &[u32], local: Vec<u32>) -> Self {
        let fields = vocab_sizes.len();
        assert_eq!(local.len(), rows * fields, "CatBlock size mismatch");
        let mut field_offsets = Vec::with_capacity(fields);
        let mut acc = 0u32;
        for &v in vocab_sizes {
            field_offsets.push(acc);
            acc += v;
        }
        let mut indices = local;
        for (i, idx) in indices.iter_mut().enumerate() {
            let f = i % fields;
            assert!(*idx < vocab_sizes[f], "categorical index out of vocab");
            *idx += field_offsets[f];
        }
        Self {
            rows,
            fields,
            indices,
            field_offsets,
            vocab: acc as usize,
        }
    }

    /// Number of instances.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of categorical fields.
    pub fn fields(&self) -> usize {
        self.fields
    }

    /// Total vocabulary size (embedding-table rows).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Global indices of instance `r` (one per field).
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.indices[r * self.fields..(r + 1) * self.fields]
    }

    /// All global indices, row-major.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Gather a mini-batch of instances.
    pub fn select_rows(&self, rows: &[usize]) -> CatBlock {
        let mut indices = Vec::with_capacity(rows.len() * self.fields);
        for &r in rows {
            indices.extend_from_slice(self.row(r));
        }
        CatBlock {
            rows: rows.len(),
            fields: self.fields,
            indices,
            field_offsets: self.field_offsets.clone(),
            vocab: self.vocab,
        }
    }

    /// Sorted unique global indices appearing in this block — the
    /// embedding rows a mini-batch touches (sparse protocol support).
    pub fn support(&self) -> Vec<u32> {
        let mut s = self.indices.clone();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Restrict to a contiguous range of fields (vertical split between
    /// parties), rebasing table offsets so the new block's vocabulary is
    /// self-contained.
    pub fn select_fields(&self, lo: usize, hi: usize) -> CatBlock {
        assert!(lo < hi && hi <= self.fields, "bad field range");
        let base = self.field_offsets[lo];
        let end = if hi == self.fields {
            self.vocab as u32
        } else {
            self.field_offsets[hi]
        };
        let fields = hi - lo;
        let mut indices = Vec::with_capacity(self.rows * fields);
        for r in 0..self.rows {
            for &g in &self.row(r)[lo..hi] {
                indices.push(g - base);
            }
        }
        let field_offsets = self.field_offsets[lo..hi]
            .iter()
            .map(|&o| o - base)
            .collect();
        CatBlock {
            rows: self.rows,
            fields,
            indices,
            field_offsets,
            vocab: (end - base) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CatBlock {
        // 3 rows, 2 fields with vocab sizes [3, 2]
        CatBlock::from_local(3, &[3, 2], vec![0, 1, 2, 0, 1, 1])
    }

    #[test]
    fn global_offsets() {
        let c = sample();
        assert_eq!(c.vocab(), 5);
        assert_eq!(c.row(0), &[0, 4]); // field1 offset is 3
        assert_eq!(c.row(1), &[2, 3]);
        assert_eq!(c.row(2), &[1, 4]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn vocab_bounds_checked() {
        CatBlock::from_local(1, &[2], vec![2]);
    }

    #[test]
    fn select_rows_batches() {
        let c = sample();
        let b = c.select_rows(&[2, 0]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.row(0), c.row(2));
        assert_eq!(b.row(1), c.row(0));
    }

    #[test]
    fn support_is_sorted_unique() {
        let c = sample();
        assert_eq!(c.support(), vec![0, 1, 2, 3, 4]);
        assert_eq!(c.select_rows(&[0]).support(), vec![0, 4]);
    }

    #[test]
    fn select_fields_rebases() {
        let c = sample();
        let right = c.select_fields(1, 2);
        assert_eq!(right.fields(), 1);
        assert_eq!(right.vocab(), 2);
        assert_eq!(right.row(0), &[1]);
        assert_eq!(right.row(1), &[0]);
        let left = c.select_fields(0, 1);
        assert_eq!(left.vocab(), 3);
        assert_eq!(left.row(1), &[2]);
    }
}
