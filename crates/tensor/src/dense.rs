//! Row-major dense `f64` matrices.

use std::fmt;

/// A row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics on size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Dense::from_vec size mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Dense::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Dense::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(k);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Dense::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let dot: f64 = arow.iter().zip(brow).map(|(a, b)| a * b).sum();
                out.set(i, j, dot);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum (new matrix).
    pub fn add(&self, other: &Dense) -> Dense {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference (new matrix).
    pub fn sub(&self, other: &Dense) -> Dense {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Dense) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Dense) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f64, other: &Dense) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scaled copy.
    pub fn scale(&self, alpha: f64) -> Dense {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Elementwise map (new matrix).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Dense {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Dense) -> Dense {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Dense {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Gather a subset of rows into a new matrix.
    pub fn select_rows(&self, rows: &[usize]) -> Dense {
        let mut out = Dense::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Gather a subset of columns into a new matrix (used to split a
    /// feature space vertically between parties).
    pub fn select_cols(&self, cols: &[usize]) -> Dense {
        let mut out = Dense::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (k, &c) in cols.iter().enumerate() {
                dst[k] = src[c];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hstack(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Dense::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, a| m.max(a.abs()))
    }

    /// True if every entry is within `tol` of the corresponding entry of
    /// `other`.
    pub fn approx_eq(&self, other: &Dense, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dense({}x{})", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:>9.4}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Dense {
        Dense::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matmul_known() {
        let a = m2x3();
        let b = Dense::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m2x3();
        let b = Dense::from_vec(2, 2, vec![1.0, -1.0, 0.5, 2.0]);
        assert!(a.t_matmul(&b).approx_eq(&a.transpose().matmul(&b), 1e-12));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m2x3();
        let b = Dense::from_vec(4, 3, vec![1.0; 12]);
        assert!(a.matmul_t(&b).approx_eq(&a.matmul(&b.transpose()), 1e-12));
    }

    #[test]
    fn add_sub_axpy() {
        let a = m2x3();
        let b = a.scale(2.0);
        assert!(a.add(&a).approx_eq(&b, 1e-15));
        assert!(b.sub(&a).approx_eq(&a, 1e-15));
        let mut c = a.clone();
        c.axpy(3.0, &a);
        assert!(c.approx_eq(&a.scale(4.0), 1e-15));
    }

    #[test]
    fn select_rows_and_hstack() {
        let a = m2x3();
        let sel = a.select_rows(&[1, 0, 1]);
        assert_eq!(sel.row(0), a.row(1));
        assert_eq!(sel.row(1), a.row(0));
        let h = a.hstack(&a);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(1, 5), 6.0);
    }

    #[test]
    fn transpose_involution() {
        let a = m2x3();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn norms() {
        let a = Dense::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = m2x3();
        let _ = a.matmul(&m2x3());
    }
}
