//! A storage-agnostic view over numerical feature blocks.

use crate::{Csr, Dense};

/// Numerical features in either dense or sparse storage.
///
/// The federated MatMul source layer and the plaintext models both take
/// `Features`, dispatching to the sparsity-aware kernel when possible —
/// mirroring how BlindFL's CryptoTensor keeps sparse inputs sparse.
#[derive(Clone, Debug)]
pub enum Features {
    /// Row-major dense storage.
    Dense(Dense),
    /// Compressed-sparse-row storage (high-dimensional sparse blocks).
    Sparse(Csr),
}

impl Features {
    /// Number of instances.
    pub fn rows(&self) -> usize {
        match self {
            Features::Dense(d) => d.rows(),
            Features::Sparse(s) => s.rows(),
        }
    }

    /// Feature dimensionality.
    pub fn cols(&self) -> usize {
        match self {
            Features::Dense(d) => d.cols(),
            Features::Sparse(s) => s.cols(),
        }
    }

    /// `X * W`.
    pub fn matmul(&self, w: &Dense) -> Dense {
        match self {
            Features::Dense(d) => d.matmul(w),
            Features::Sparse(s) => s.matmul_dense(w),
        }
    }

    /// `Xᵀ * G` (gradient projection).
    pub fn t_matmul(&self, g: &Dense) -> Dense {
        match self {
            Features::Dense(d) => d.t_matmul(g),
            Features::Sparse(s) => s.t_matmul_dense(g),
        }
    }

    /// `Xᵀ · G` restricted to the feature rows in `support` (sorted):
    /// output row `s` is `Σ_i X[i, support[s]] · G[i, ·]`.
    ///
    /// This is the plaintext twin of the CryptoTensor's sparse gradient
    /// projection: only the batch-support rows are materialised.
    pub fn t_matmul_support(&self, g: &Dense, support: &[u32]) -> Dense {
        assert_eq!(self.rows(), g.rows(), "t_matmul_support row mismatch");
        let mut out = Dense::zeros(support.len(), g.cols());
        match self {
            Features::Dense(d) => {
                for i in 0..d.rows() {
                    let xrow = d.row(i);
                    let grow = g.row(i);
                    for (s, &c) in support.iter().enumerate() {
                        let x = xrow[c as usize];
                        if x == 0.0 {
                            continue;
                        }
                        let orow = out.row_mut(s);
                        for (o, &gv) in orow.iter_mut().zip(grow) {
                            *o += x * gv;
                        }
                    }
                }
            }
            Features::Sparse(sp) => {
                for i in 0..sp.rows() {
                    let (idx, vals) = sp.row(i);
                    let grow = g.row(i);
                    for (&c, &x) in idx.iter().zip(vals) {
                        if let Ok(s) = support.binary_search(&c) {
                            let orow = out.row_mut(s);
                            for (o, &gv) in orow.iter_mut().zip(grow) {
                                *o += x * gv;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Gather a mini-batch of rows.
    pub fn select_rows(&self, rows: &[usize]) -> Features {
        match self {
            Features::Dense(d) => Features::Dense(d.select_rows(rows)),
            Features::Sparse(s) => Features::Sparse(s.select_rows(rows)),
        }
    }

    /// Sorted unique feature indices with a non-zero in this block; for
    /// dense blocks that is all columns.
    pub fn col_support(&self) -> Vec<u32> {
        match self {
            Features::Dense(d) => (0..d.cols() as u32).collect(),
            Features::Sparse(s) => s.col_support(),
        }
    }

    /// Is this block stored sparsely?
    pub fn is_sparse(&self) -> bool {
        matches!(self, Features::Sparse(_))
    }

    /// Stored non-zero count (dense counts every entry).
    pub fn nnz(&self) -> usize {
        match self {
            Features::Dense(d) => d.rows() * d.cols(),
            Features::Sparse(s) => s.nnz(),
        }
    }

    /// Densified copy (diagnostics only).
    pub fn to_dense(&self) -> Dense {
        match self {
            Features::Dense(d) => d.clone(),
            Features::Sparse(s) => s.to_dense(),
        }
    }
}

impl From<Dense> for Features {
    fn from(d: Dense) -> Self {
        Features::Dense(d)
    }
}

impl From<Csr> for Features {
    fn from(s: Csr) -> Self {
        Features::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_consistency() {
        let d = Dense::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let s = Csr::from_dense(&d);
        let w = Dense::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let fd = Features::from(d.clone());
        let fs = Features::from(s);
        assert!(fd.matmul(&w).approx_eq(&fs.matmul(&w), 1e-12));
        let g = Dense::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.4]);
        assert!(fd.t_matmul(&g).approx_eq(&fs.t_matmul(&g), 1e-12));
        // Support-restricted projection agrees with the full one.
        let support = [0u32, 2];
        let full = fd.t_matmul(&g);
        let want = full.select_rows(&[0, 2]);
        assert!(fd.t_matmul_support(&g, &support).approx_eq(&want, 1e-12));
        assert!(fs.t_matmul_support(&g, &support).approx_eq(&want, 1e-12));
        assert_eq!(fd.col_support(), vec![0, 1, 2]);
        assert_eq!(fs.col_support(), vec![0, 1, 2]);
        assert!(fs.is_sparse());
        assert!(!fd.is_sparse());
    }
}
