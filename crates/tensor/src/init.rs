//! Random matrix initialisation.

use crate::Dense;
use rand::Rng;

/// Uniform entries in `[-scale, scale)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, scale: f64) -> Dense {
    let data = (0..rows * cols)
        .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale)
        .collect();
    Dense::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform: `U(-sqrt(6/(fan_in+fan_out)), +...)`.
pub fn xavier<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Dense {
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform(rng, fan_in, fan_out, bound)
}

/// Standard normal entries scaled by `std` (Box–Muller).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f64) -> Dense {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Dense::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 10, 10, 0.5);
        assert!(m.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = xavier(&mut rng, 100, 50);
        let bound = (6.0 / 150.0f64).sqrt();
        assert!(m.max_abs() <= bound);
        assert_eq!(m.shape(), (100, 50));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = gaussian(&mut rng, 100, 100, 2.0);
        let mean: f64 = m.data().iter().sum::<f64>() / 10_000.0;
        let var: f64 = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / 10_000.0;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }
}
