//! Dense and sparse matrix substrate for blindfl-rs.
//!
//! The BlindFL protocols operate on three kinds of data:
//!
//! * [`Dense`] — row-major `f64` matrices (activations, weights,
//!   gradients),
//! * [`Csr`] — compressed sparse row matrices (the paper's
//!   high-dimensional sparse feature blocks; keeping these sparse is the
//!   entire point of the federated source layer vs. MPC outsourcing),
//! * [`CatBlock`] — categorical feature blocks (per-field indices into a
//!   shared embedding table) consumed by the Embed-MatMul source layer.
//!
//! [`Features`] unifies dense and sparse numerical blocks behind one
//! matmul interface so models and protocols are agnostic to the storage
//! format.

#![warn(missing_docs)]
pub mod cat;
pub mod dense;
pub mod features;
pub mod init;
pub mod sparse;

pub use cat::CatBlock;
pub use dense::Dense;
pub use features::Features;
pub use sparse::Csr;
