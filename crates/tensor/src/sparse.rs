//! Compressed sparse row matrices.
//!
//! The paper's Table 5 argument hinges on BlindFL's ability to keep
//! high-dimensional sparse features in CSR form at their owner and only
//! touch non-zeros; everything here preserves that property.

use crate::Dense;

/// A CSR sparse matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, length `nnz`, sorted within each row.
    indices: Vec<u32>,
    /// Values, length `nnz`.
    values: Vec<f64>,
}

impl Csr {
    /// Build from COO triplets `(row, col, value)`; duplicates are summed.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, u32, f64)>) -> Self {
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(t.len());
        let mut values: Vec<f64> = Vec::with_capacity(t.len());
        let mut last: Option<(usize, u32)> = None;
        for (r, c, v) in t {
            assert!(r < rows && (c as usize) < cols, "triplet out of bounds");
            if last == Some((r, c)) {
                *values.last_mut().unwrap() += v;
            } else {
                indptr[r + 1] += 1;
                indices.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Build from raw CSR parts (validated).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1);
        assert_eq!(indices.len(), values.len());
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        debug_assert!(indices.iter().all(|&c| (c as usize) < cols));
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total
    }

    /// `(column indices, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Sparse × dense: `self * other`.
    pub fn matmul_dense(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows(), "matmul shape mismatch");
        let mut out = Dense::zeros(self.rows, other.cols());
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            let orow = out.row_mut(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let brow = other.row(c as usize);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// Sparse-transpose × dense: `selfᵀ * other` (shape `cols × other.cols`).
    ///
    /// Used for `∇W = Xᵀ∇Z`; the output's non-zero rows are exactly the
    /// column support of `self`, which the protocols exploit.
    pub fn t_matmul_dense(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows(), "t_matmul shape mismatch");
        let mut out = Dense::zeros(self.cols, other.cols());
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            let brow = other.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let orow = out.row_mut(c as usize);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// Gather a subset of rows (a mini-batch) into a new CSR.
    pub fn select_rows(&self, rows: &[usize]) -> Csr {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &r in rows {
            let (idx, vals) = self.row(r);
            indices.extend_from_slice(idx);
            values.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        Csr {
            rows: rows.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Sorted unique column indices present in this matrix — the "batch
    /// support" over which the federated protocols do sparse work.
    pub fn col_support(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self.indices.clone();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Densify (test/debug use; the protocols never do this for Party
    /// data, by design).
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                out.set(r, c as usize, v);
            }
        }
        out
    }

    /// Build a CSR view of a dense matrix (drops exact zeros).
    pub fn from_dense(d: &Dense) -> Csr {
        let mut triplets = Vec::new();
        for r in 0..d.rows() {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0.0 {
                    triplets.push((r, c as u32, v));
                }
            }
        }
        Csr::from_triplets(d.rows(), d.cols(), triplets)
    }

    /// Restrict to a subset of columns, remapping indices to
    /// `0..cols.len()`. `cols` must be sorted ascending.
    ///
    /// Used to split a dataset's feature space between Party A and
    /// Party B.
    pub fn select_cols(&self, cols: &[u32]) -> Csr {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                if let Ok(pos) = cols.binary_search(&c) {
                    indices.push(pos as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Csr {
            rows: self.rows,
            cols: cols.len(),
            indptr,
            indices,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [[1, 0, 2], [0, 0, 0], [0, 3, 4]]
        Csr::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)],
        )
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), (&[0u32, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.row(1).0.len(), 0);
        assert!((m.sparsity() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_summed() {
        let m = Csr::from_triplets(1, 2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).1, &[3.5]);
    }

    #[test]
    fn matmul_matches_dense() {
        let m = sample();
        let d = Dense::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let want = m.to_dense().matmul(&d);
        assert!(m.matmul_dense(&d).approx_eq(&want, 1e-12));
    }

    #[test]
    fn t_matmul_matches_dense() {
        let m = sample();
        let d = Dense::from_vec(3, 2, vec![1.0, -1.0, 2.0, 0.5, -3.0, 1.5]);
        let want = m.to_dense().t_matmul(&d);
        assert!(m.t_matmul_dense(&d).approx_eq(&want, 1e-12));
    }

    #[test]
    fn select_rows_keeps_structure() {
        let m = sample();
        let sel = m.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), m.row(2));
        assert_eq!(sel.row(1), m.row(0));
        assert_eq!(sel.rows(), 2);
    }

    #[test]
    fn col_support_sorted_unique() {
        let m = sample();
        assert_eq!(m.col_support(), vec![0, 1, 2]);
        let sel = m.select_rows(&[0]);
        assert_eq!(sel.col_support(), vec![0, 2]);
    }

    #[test]
    fn select_cols_remaps() {
        let m = sample();
        let right = m.select_cols(&[1, 2]);
        assert_eq!(right.shape(), (3, 2));
        let want = Dense::from_vec(3, 2, vec![0.0, 2.0, 0.0, 0.0, 3.0, 4.0]);
        assert!(right.to_dense().approx_eq(&want, 1e-12));
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        assert_eq!(Csr::from_dense(&m.to_dense()), m);
    }
}
