//! Property tests for the tensor substrate: linear-algebra laws and
//! dense/sparse kernel agreement on random matrices.

use bf_tensor::{Csr, Dense};
use proptest::prelude::*;

/// Random dense matrix with entries that are zero ~half of the time (so
/// CSR conversion exercises real sparsity patterns).
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    prop::collection::vec(
        prop_oneof![3 => Just(0.0f64), 2 => -5.0f64..5.0],
        rows * cols,
    )
    .prop_map(move |data| Dense::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_associative(a in dense(4, 3), b in dense(3, 5), c in dense(5, 2)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(a in dense(4, 3), b in dense(3, 4), c in dense(3, 4)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn transpose_of_product(a in dense(4, 3), b in dense(3, 5)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn sparse_matmul_agrees_with_dense(a in dense(6, 5), b in dense(5, 4)) {
        let s = Csr::from_dense(&a);
        prop_assert!(s.matmul_dense(&b).approx_eq(&a.matmul(&b), 1e-9));
    }

    #[test]
    fn sparse_t_matmul_agrees_with_dense(a in dense(6, 5), b in dense(6, 3)) {
        let s = Csr::from_dense(&a);
        prop_assert!(s.t_matmul_dense(&b).approx_eq(&a.t_matmul(&b), 1e-9));
    }

    #[test]
    fn csr_roundtrip(a in dense(5, 7)) {
        let s = Csr::from_dense(&a);
        prop_assert!(s.to_dense().approx_eq(&a, 0.0));
        prop_assert_eq!(s.nnz(), a.data().iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn select_rows_then_matmul_commutes(a in dense(6, 4), b in dense(4, 3)) {
        let s = Csr::from_dense(&a);
        let rows = [4usize, 1, 1, 5];
        let lhs = s.select_rows(&rows).matmul_dense(&b);
        let rhs = a.select_rows(&rows).matmul(&b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn column_split_partitions_product(a in dense(5, 6), b in dense(6, 2)) {
        // X*W == X_left*W_left + X_right*W_right under a column split,
        // which is exactly the VFL decomposition Z = X_A W_A + X_B W_B.
        let s = Csr::from_dense(&a);
        let left_cols: Vec<u32> = (0..3).collect();
        let right_cols: Vec<u32> = (3..6).collect();
        let xl = s.select_cols(&left_cols);
        let xr = s.select_cols(&right_cols);
        let wl = b.select_rows(&[0, 1, 2]);
        let wr = b.select_rows(&[3, 4, 5]);
        let joint = s.matmul_dense(&b);
        let split = xl.matmul_dense(&wl).add(&xr.matmul_dense(&wr));
        prop_assert!(joint.approx_eq(&split, 1e-9));
    }

    #[test]
    fn axpy_matches_scale_add(a in dense(3, 3), b in dense(3, 3), alpha in -2.0f64..2.0) {
        let mut c = a.clone();
        c.axpy(alpha, &b);
        prop_assert!(c.approx_eq(&a.add(&b.scale(alpha)), 1e-12));
    }
}
