//! Shared utilities for the blindfl-rs workspace.
//!
//! Small, dependency-light helpers used across the crypto, tensor and
//! benchmark crates: a scoped-thread parallel map, a stopwatch, summary
//! statistics, and a fixed-width table printer for the experiment
//! harnesses.

pub mod par;
pub mod stats;
pub mod table;
pub mod time;

pub use par::{par_for_each_mut, par_map};
pub use stats::{mean, mean_std, std_dev};
pub use table::Table;
pub use time::Stopwatch;
