//! Minimal data-parallel helpers built on `crossbeam::scope`.
//!
//! The crypto tensor operations in `bf-paillier` are embarrassingly
//! parallel over matrix rows/entries; these helpers split an index range
//! into per-thread chunks without any allocation beyond the output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for parallel sections.
///
/// Respects the `BLINDFL_THREADS` environment variable; defaults to the
/// machine's available parallelism.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("BLINDFL_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Parallel map over `0..n`, producing a `Vec<T>` where `out[i] = f(i)`.
///
/// `f` must be cheap to share across threads (`Sync`). Falls back to a
/// serial loop for small `n` to avoid thread spawn overhead.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 32 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: every element is written exactly once below before assume_init.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let next = AtomicUsize::new(0);
    let chunk = (n / (threads * 8)).max(1);
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        crossbeam::scope(|s| {
            for _ in 0..threads {
                let f = &f;
                let next = &next;
                let out_ptr = &out_ptr;
                s.spawn(move |_| loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        // SAFETY: disjoint indices across threads.
                        unsafe {
                            out_ptr.0.add(i).write(std::mem::MaybeUninit::new(f(i)));
                        }
                    }
                });
            }
        })
        .expect("parallel worker panicked");
    }
    // SAFETY: all n elements initialised by the workers.
    unsafe { std::mem::transmute::<Vec<std::mem::MaybeUninit<T>>, Vec<T>>(out) }
}

struct SendPtr<T>(*mut T);
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

/// Parallel in-place mutation of a slice: `f(i, &mut slice[i])`.
pub fn par_for_each_mut<T, F>(slice: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slice.len();
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 32 {
        for (i, v) in slice.iter_mut().enumerate() {
            f(i, v);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let chunk = (n / (threads * 8)).max(1);
    let base = SendPtr(slice.as_mut_ptr());
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let base = &base;
            s.spawn(move |_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    // SAFETY: disjoint indices across threads.
                    unsafe { f(i, &mut *base.0.add(i)) };
                }
            });
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial() {
        let got = par_map(1000, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_small_input() {
        assert_eq!(par_map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn par_for_each_mut_matches_serial() {
        let mut a: Vec<u64> = (0..500).collect();
        par_for_each_mut(&mut a, |i, v| *v += i as u64);
        for (i, v) in a.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn par_map_nontrivial_type() {
        let got = par_map(200, |i| vec![i; 3]);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
    }
}
