//! Minimal data-parallel helpers built on `crossbeam::scope`.
//!
//! The crypto tensor operations in `bf-paillier` are embarrassingly
//! parallel over matrix rows/entries; these helpers split an index range
//! into per-thread chunks without any allocation beyond the output.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

std::thread_local! {
    /// True while the current thread is a worker inside a parallel
    /// section. Worker threads are fresh per section, so the flag never
    /// needs resetting — it dies with the thread.
    static IN_PAR: Cell<bool> = const { Cell::new(false) };
}

/// True if the calling thread is currently a parallel-section worker.
///
/// Nested parallel helpers ([`par_map`] / [`par_for_each_mut`]) check
/// this and fall back to a serial loop: with `T` hardware threads, a
/// `par_map` whose element closure itself calls `par_map` would
/// otherwise spawn `T²` threads (e.g. an obfuscator pool built inside a
/// parallel encryption section), thrashing the scheduler for no gain —
/// the outer section already saturates the machine.
pub fn in_parallel_section() -> bool {
    IN_PAR.with(|c| c.get())
}

/// Number of worker threads to use for parallel sections.
///
/// Respects the `BLINDFL_THREADS` environment variable; defaults to the
/// machine's available parallelism.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("BLINDFL_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Parallel map over `0..n`, producing a `Vec<T>` where `out[i] = f(i)`.
///
/// `f` must be cheap to share across threads (`Sync`). Falls back to a
/// serial loop for small `n` to avoid thread spawn overhead.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 32 || in_parallel_section() {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: every element is written exactly once below before assume_init.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n);
    }
    let next = AtomicUsize::new(0);
    let chunk = (n / (threads * 8)).max(1);
    {
        let out_ptr = SendPtr(out.as_mut_ptr());
        crossbeam::scope(|s| {
            for _ in 0..threads {
                let f = &f;
                let next = &next;
                let out_ptr = &out_ptr;
                s.spawn(move |_| {
                    IN_PAR.with(|c| c.set(true));
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for i in start..end {
                            // SAFETY: disjoint indices across threads.
                            unsafe {
                                out_ptr.0.add(i).write(std::mem::MaybeUninit::new(f(i)));
                            }
                        }
                    }
                });
            }
        })
        .expect("parallel worker panicked");
    }
    // SAFETY: all n elements initialised by the workers.
    unsafe { std::mem::transmute::<Vec<std::mem::MaybeUninit<T>>, Vec<T>>(out) }
}

struct SendPtr<T>(*mut T);
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

/// Parallel in-place mutation of a slice: `f(i, &mut slice[i])`.
pub fn par_for_each_mut<T, F>(slice: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slice.len();
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n < 32 || in_parallel_section() {
        for (i, v) in slice.iter_mut().enumerate() {
            f(i, v);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let chunk = (n / (threads * 8)).max(1);
    let base = SendPtr(slice.as_mut_ptr());
    crossbeam::scope(|s| {
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let base = &base;
            s.spawn(move |_| {
                IN_PAR.with(|c| c.set(true));
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        // SAFETY: disjoint indices across threads.
                        unsafe { f(i, &mut *base.0.add(i)) };
                    }
                }
            });
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial() {
        let got = par_map(1000, |i| i * i);
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_small_input() {
        assert_eq!(par_map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn par_for_each_mut_matches_serial() {
        let mut a: Vec<u64> = (0..500).collect();
        par_for_each_mut(&mut a, |i, v| *v += i as u64);
        for (i, v) in a.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn par_map_nontrivial_type() {
        let got = par_map(200, |i| vec![i; 3]);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
    }

    #[test]
    fn nested_par_map_runs_serially_on_the_worker_thread() {
        // Regression: a par_map inside a par_map worker used to spawn a
        // full worker pool per outer worker (T² threads). The inner
        // call must now fall back to a serial loop — every inner
        // element executes on the calling worker's own thread.
        assert!(!in_parallel_section(), "flag leaked into the test thread");
        let outer = par_map(64, |i| {
            assert!(in_parallel_section() || num_threads() == 1);
            let me = std::thread::current().id();
            let inner = par_map(64, move |j| (std::thread::current().id(), i + j));
            // Inner results are correct *and* were produced serially
            // (same thread as the worker) whenever the outer section
            // actually went parallel.
            for (k, (tid, v)) in inner.iter().enumerate() {
                assert_eq!(*v, i + k);
                if num_threads() > 1 {
                    assert_eq!(*tid, me, "nested par_map spawned threads");
                }
            }
            inner.iter().map(|(_, v)| *v).sum::<usize>()
        });
        for (i, s) in outer.iter().enumerate() {
            assert_eq!(*s, 64 * i + (0..64).sum::<usize>());
        }
        // Back outside: the flag must not stick to the caller.
        assert!(!in_parallel_section());
    }

    #[test]
    fn nested_par_for_each_mut_runs_serially() {
        let mut rows: Vec<Vec<u64>> = (0..64).map(|i| vec![i; 64]).collect();
        par_for_each_mut(&mut rows, |i, row| {
            let me = std::thread::current().id();
            let ids = par_map(row.len(), move |_| std::thread::current().id());
            if num_threads() > 1 {
                assert!(ids.iter().all(|t| *t == me));
            }
            par_for_each_mut(row, |j, v| *v += j as u64);
            assert_eq!(row[3], i as u64 + 3);
        });
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, (i + j) as u64);
            }
        }
    }
}
