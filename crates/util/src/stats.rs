//! Summary statistics used by the experiment harnesses.
//!
//! The paper reports mean and standard deviation over five runs for every
//! experiment; these helpers compute exactly that.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0.0 for fewer
/// than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// `(mean, std_dev)` in one pass over the formulae above.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Used by the Figure 11 harness to quantify how little the secret-share
/// pieces say about the true weights.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 1e-3);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
