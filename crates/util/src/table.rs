//! Fixed-width ASCII table printer for the experiment harness binaries.
//!
//! Each Table/Figure harness prints rows in the same layout the paper
//! uses, so outputs can be compared side by side with the publication.

/// A simple column-aligned table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have the same arity as the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string with column alignment and a separator line.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                line.push_str(&" ".repeat(widths[i].saturating_sub(c.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["dataset", "time"]);
        t.row(vec!["a9a", "0.018"]);
        t.row(vec!["avazu-app", "0.038"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].starts_with("a9a"));
        // Columns aligned: "time" column starts at same offset in all rows.
        let off = lines[0].find("time").unwrap();
        assert_eq!(&lines[3][off..off + 5], "0.038");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
