//! Wall-clock timing helpers for the experiment harnesses.

use std::time::{Duration, Instant};

/// A simple stopwatch that accumulates elapsed time across start/stop
/// intervals. The Table 5 harness uses this to time *only* the matrix
/// multiplication portion of each mini-batch, as the paper does.
#[derive(Debug)]
pub struct Stopwatch {
    accumulated: Duration,
    started: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self {
            accumulated: Duration::ZERO,
            started: None,
        }
    }

    /// Start (or restart) the current interval. Idempotent while running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stop the current interval, folding it into the accumulated total.
    pub fn stop(&mut self) {
        if let Some(t) = self.started.take() {
            self.accumulated += t.elapsed();
        }
    }

    /// Total accumulated time (including a running interval, if any).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t) => self.accumulated + t.elapsed(),
            None => self.accumulated,
        }
    }

    /// Accumulated seconds as `f64`.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Reset to zero, stopped.
    pub fn reset(&mut self) {
        self.accumulated = Duration::ZERO;
        self.started = None;
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_accumulates() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(4));
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.elapsed() > first);
        sw.reset();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
