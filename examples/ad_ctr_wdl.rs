//! Ad click-through-rate prediction with a federated Wide & Deep model
//! — the paper's E-commerce scenario (Figure 5): an ad platform
//! (Party B) holds click labels, campaign features and some user
//! fields; a partner (Party A) holds complementary user features,
//! including categorical fields that require embedding lookups.
//!
//! The Embed-MatMul source layer trains a *secret-shared* embedding
//! table: categorical indices never leave their owner, and no party
//! ever sees an embedding row in plaintext.
//!
//! ```text
//! cargo run --release -p bf-integration --example ad_ctr_wdl
//! ```

use bf_datagen::{generate, spec, vsplit};
use bf_ml::models::{Model, WdlModel};
use bf_ml::TrainConfig;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use rand::SeedableRng;

fn main() {
    // avazu-shaped CTR data: sparse numerical (wide) + categorical
    // fields (deep), scaled to laptop size.
    let dataset = spec("avazu-app").scaled(4000, 100);
    let (train, test) = generate(&dataset, 77);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let cat = train.cat.as_ref().unwrap();
    println!(
        "impressions: {} train; wide features: {}; categorical fields: {} (vocab {})",
        train.rows(),
        train.num_dim(),
        cat.fields(),
        cat.vocab()
    );

    let tc = TrainConfig {
        epochs: 8,
        ..Default::default()
    };
    let ftc = FedTrainConfig {
        base: tc.clone(),
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Wdl {
            emb_dim: 8,
            deep_hidden: vec![16],
            out: 1,
        },
        &FedConfig::plain(),
        &ftc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        5,
    );
    println!(
        "federated WDL test AUC      = {:.3}",
        outcome.report.test_metric
    );

    // Baselines: the platform alone, and the (forbidden-in-practice)
    // collocated model.
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let run =
        |ds_train: &bf_ml::Dataset, ds_test: &bf_ml::Dataset, rng: &mut rand::rngs::StdRng| {
            let cat = ds_train.cat.as_ref().unwrap();
            let mut m = WdlModel::new(
                rng,
                ds_train.num_dim(),
                cat.vocab(),
                cat.fields(),
                8,
                &[16],
                1,
            );
            bf_ml::train(&mut m, ds_train, ds_test, &tc).test_metric
        };
    println!(
        "platform-only WDL test AUC  = {:.3}",
        run(&train_v.party_b, &test_v.party_b, &mut rng)
    );
    println!(
        "collocated WDL test AUC     = {:.3}",
        run(&train, &test, &mut rng)
    );
    let _ = WdlModel::out_dim; // (silence unused-trait-import lint paths)
}
