//! Credit scoring across two enterprises — the paper's motivating
//! Fintech scenario: a bank (Party B) holds repayment labels and its
//! own account features; a social-app company (Party A) holds
//! behavioural features for the same customers. Neither may reveal its
//! data; BlindFL trains a joint risk model anyway.
//!
//! ```text
//! cargo run --release -p bf-integration --example credit_scoring
//! ```

use bf_datagen::{generate, spec, vsplit};
use bf_ml::metrics::accuracy_binary;
use bf_ml::TrainConfig;
use blindfl::config::FedConfig;
use blindfl::inspect::{matmul_share_vs_weight, share_informativeness};
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};

fn main() {
    // The `w8a`-shaped dataset stands in for the bank's risk data:
    // 300 one-hot-ish features, heavily sparse, binary default labels.
    let dataset = spec("w8a").scaled(10, 1);
    let (train, test) = generate(&dataset, 2024);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    println!(
        "customers: {} train / {} test; bank features: {}; app features: {}",
        train.rows(),
        test.rows(),
        train_v.party_b.num_dim(),
        train_v.party_a.num_dim()
    );

    // Fast lossless backend for the demo; switch to
    // `FedConfig::paillier_default()` for real encryption.
    let cfg = FedConfig::plain();
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs: 10,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        99,
    );
    println!(
        "joint risk model test AUC = {:.3}",
        outcome.report.test_metric
    );

    // The bank can threshold the federated scores as usual…
    let labels = test_v.party_b.labels.as_ref().unwrap().as_binary();
    let acc = accuracy_binary(outcome.report.test_logits.data(), labels, 0.0);
    println!("decision accuracy at the 0-logit threshold = {:.3}", acc);

    // …while neither side can reconstruct the model. The app company's
    // share piece says nothing about the true weights:
    let pairs = matmul_share_vs_weight(&outcome.party_a, &outcome.party_b);
    let (corr, sign) = share_informativeness(&pairs);
    println!(
        "share-vs-weight informativeness at Party A: pearson {corr:+.3}, sign agreement {sign:.3} \
         (chance = 0.5)"
    );
}
