//! Federated (secret-shared) top model — paper Appendix B.
//!
//! With a non-federated top model, Party B learns `Z` and `∇Z`
//! (Theorems 5.2/6.2 bound what those reveal). For stronger guarantees
//! the top model itself can run on secret shares: the source layer
//! emits the sharing `⟨Z'_A, Z'_B⟩` and consumes a sharing of `∇Z`.
//! This example trains a least-squares classifier whose square-loss
//! derivative is computed share-locally — **neither party ever sees
//! `Z` or `∇Z` in plaintext**.
//!
//! ```text
//! cargo run --release -p bf-integration --example federated_top
//! ```

use bf_datagen::{generate, spec, vsplit};
use bf_ml::data::BatchIter;
use bf_ml::metrics::auc;
use bf_mpc::transport::Msg;
use blindfl::config::FedConfig;
use blindfl::session::run_pair;
use blindfl::source::ss_top::SquareLossSsTop;
use blindfl::source::MatMulSource;

fn main() {
    let dataset = spec("a9a").scaled(50, 1);
    let (train, test) = generate(&dataset, 13);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let y: Vec<f64> = train_v
        .party_b
        .labels
        .as_ref()
        .unwrap()
        .as_binary()
        .to_vec();
    let y_test: Vec<f64> = test_v.party_b.labels.as_ref().unwrap().as_binary().to_vec();

    let cfg = FedConfig::plain().with_lr(0.1);
    let epochs = 8;
    let bs = 128;
    let n = train_v.party_a.rows();
    let train_a = train_v.party_a.clone();
    let test_a = test_v.party_a.clone();
    let train_b = train_v.party_b.clone();
    let test_b = test_v.party_b.clone();

    let (_, test_auc) = run_pair(
        &cfg,
        17,
        move |mut sess| {
            let mut layer = MatMulSource::init(&mut sess, train_a.num_dim(), 1).unwrap();
            for epoch in 0..epochs {
                for idx in BatchIter::new(n, bs, 3 ^ epoch as u64) {
                    let xb = train_a.num.as_ref().unwrap().select_rows(&idx);
                    let z_share = layer.forward_ss(&mut sess, &xb, true).unwrap();
                    let g = SquareLossSsTop::grad_piece_a(&z_share);
                    layer.backward_ss(&mut sess, &g).unwrap();
                }
            }
            // Inference: only now is the *prediction* revealed to B.
            let z = layer
                .forward_ss(&mut sess, test_a.num.as_ref().unwrap(), false)
                .unwrap();
            sess.ep.send(Msg::Mat(z)).unwrap();
        },
        move |mut sess| {
            let mut layer = MatMulSource::init(&mut sess, train_b.num_dim(), 1).unwrap();
            for epoch in 0..epochs {
                for idx in BatchIter::new(n, bs, 3 ^ epoch as u64) {
                    let xb = train_b.num.as_ref().unwrap().select_rows(&idx);
                    let yb: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                    let z_share = layer.forward_ss(&mut sess, &xb, true).unwrap();
                    let g = SquareLossSsTop::grad_piece_b(&z_share, &yb);
                    layer.backward_ss(&mut sess, &g).unwrap();
                }
            }
            let z_share = layer
                .forward_ss(&mut sess, test_b.num.as_ref().unwrap(), false)
                .unwrap();
            let z = z_share.add(&sess.ep.recv_mat().unwrap());
            auc(z.data(), &y_test)
        },
    );
    println!("SS-top least-squares classifier test AUC = {test_auc:.3}");
    println!("(neither party observed Z or ∇Z in plaintext at any point)");
}
