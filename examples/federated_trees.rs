//! Federated gradient boosting end to end: train a SecureBoost-style
//! forest with two feature-holding guests and one label-holding host,
//! persist both model halves, reload them into fresh sessions, and
//! serve predictions through the micro-batching queue — verifying at
//! each step that the federated results are bit-identical to a
//! collocated XGBoost twin trained on the same rows.
//!
//! ```text
//! cargo run --release -p blindfl --example federated_trees
//! ```

use bf_datagen::{generate_tree, vsplit_multi};
use bf_ml::gbdt::{CollocatedGbdt, GbdtParams};
use blindfl::config::FedConfig;
use blindfl::multiparty::{collect_guests, send_hello};
use blindfl::serve::{queue, ServeConfig};
use blindfl::session::{multi_party_seed, Role, Session};
use blindfl::trees::{serve_gbdt_guest, serve_gbdt_host, train_gbdt};
use blindfl::{export_gbdt_guest, export_gbdt_host, import_gbdt_guest, import_gbdt_host};

const SEED: u64 = 23;
const DATA_SEED: u64 = 7;
const ROWS: usize = 128;
const FEATURES: usize = 8;
const GUESTS: usize = 2;

fn main() {
    let cfg = FedConfig::plain();
    let params = GbdtParams {
        trees: 4,
        max_depth: 3,
        max_bins: 16,
        frac_bits: cfg.frac_bits,
        ..GbdtParams::default()
    };

    // A dataset whose signal is an XOR of two feature thresholds —
    // exactly what trees can represent and linear models cannot.
    let ds = generate_tree(ROWS, FEATURES, DATA_SEED);
    let split = vsplit_multi(&ds, GUESTS);

    println!(
        "training a federated forest: {ROWS} rows, {FEATURES} features \
         across {GUESTS} guests + host, {} trees of depth {}",
        params.trees, params.max_depth
    );
    let fed = train_gbdt(&cfg, &params, split.guests.clone(), &split.party_b, SEED);
    let (twin, twin_losses) = CollocatedGbdt::train(&ds, &params);
    assert_eq!(
        fed.host.losses, twin_losses,
        "loss curves must be bit-equal"
    );
    assert_eq!(
        fed.host.model.trees, twin.trees,
        "forests must be identical"
    );
    println!(
        "  logloss {:.4} → {:.4} over {} rounds (bit-identical to the \
         collocated twin)",
        fed.host.losses.first().unwrap(),
        fed.host.losses.last().unwrap(),
        fed.host.losses.len()
    );

    // Persist → reload, byte-exact.
    let host_blob = export_gbdt_host(&fed.host.model);
    let host_model = import_gbdt_host(&host_blob).expect("host model reload");
    let guest_models: Vec<_> = fed
        .guests
        .iter()
        .map(|g| import_gbdt_guest(&export_gbdt_guest(&g.model)).expect("guest model reload"))
        .collect();
    println!(
        "persisted: host {} bytes, guests {:?} bytes",
        host_blob.len(),
        fed.guests
            .iter()
            .map(|g| export_gbdt_guest(&g.model).len())
            .collect::<Vec<_>>()
    );

    // Serve every row through the queue over fresh sessions.
    let serve_seed = SEED + 1;
    let mut host_eps = Vec::new();
    let mut handles = Vec::new();
    for (i, (store, model)) in split.guests.into_iter().zip(guest_models).enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        host_eps.push(ep_b);
        let cfg_a = cfg.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("trees-serve-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, GUESTS).expect("hello");
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, serve_seed),
                    )
                    .expect("guest handshake");
                    serve_gbdt_guest(&mut sess, &model, &store).expect("guest serve")
                })
                .expect("spawn guest"),
        );
    }
    let ordered = collect_guests(host_eps, GUESTS).expect("fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(
                ep,
                cfg.clone(),
                Role::B,
                multi_party_seed(Role::B, i, serve_seed),
            )
            .expect("host handshake")
        })
        .collect();

    let twin_margins = twin.predict(ds.num.as_ref().unwrap());
    let (client, rq) = queue(16);
    let client_thread = std::thread::spawn(move || {
        (0..ROWS)
            .map(|r| client.predict(r).expect("prediction").logits[0])
            .collect::<Vec<f64>>()
    });
    let report = serve_gbdt_host(
        &mut sessions,
        &host_model,
        &split.party_b,
        &ServeConfig::default(),
        rq,
    )
    .expect("host serve");
    let served = client_thread.join().expect("client");
    for h in handles {
        h.join().expect("guest serve thread");
    }
    assert!(served
        .iter()
        .zip(&twin_margins)
        .all(|(s, t)| s.to_bits() == t.to_bits()));
    println!(
        "served {} rows in {} batches — every margin bit-identical to \
         twin.predict",
        report.requests, report.batches
    );
    println!("OK");
}
