//! The multi-client serving gateway end to end: **train → persist →
//! gateway** with a replica pool, a pipelined client fleet, a client
//! that vanishes mid-stream, and the replay-parity check (see
//! `docs/SERVING.md` §gateway).
//!
//! ```text
//! cargo run --release -p blindfl --example gateway_serving
//! ```
//!
//! The gateway is Party B's front door: a nonblocking TCP acceptor +
//! event loop that multiplexes every client connection onto a pool of
//! serving replicas — each replica a full serving session (own guest
//! link, own seed, own model instance) behind a sharded micro-batch
//! queue. Replies are strictly FIFO per connection; each reply is
//! either the logits row or a typed reject code. The example:
//!
//! 1. trains a federated LR and persists both halves
//!    (`blindfl::persist` — the gateway path is always
//!    train → persist → serve),
//! 2. stands up a 2-replica gateway over in-process guest links and a
//!    TCP front door,
//! 3. drives it with 3 pipelined clients plus 1 churn client that
//!    submits and disconnects without reading a reply,
//! 4. replays every replica's recorded batch partitions
//!    (`ServeReport::batch_rows`) through the direct `predict_batch`
//!    forward and asserts every delivered reply is **bit-identical**.

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bf_datagen::{generate, spec, vsplit};
use blindfl::config::FedConfig;
use blindfl::gateway::{
    gateway_replica_seed, run_gateway, GatewayClient, GatewayConfig, GatewayReplica,
};
use blindfl::models::FedSpec;
use blindfl::persist::{export_party_a, export_party_b, import_party_a, import_party_b};
use blindfl::serve::serve_party_a;
use blindfl::session::{party_seed, run_pair, Role, Session};
use blindfl::train::{train_federated, FedTrainConfig};

const TRAIN_SEED: u64 = 29;
const SERVE_SEED: u64 = 31;
const REPLICAS: usize = 2;
const CLIENTS: usize = 3;

fn main() {
    let cfg = FedConfig::plain();

    // 1. Train → persist.
    println!("[1/4] training + persisting the federated LR...");
    let ds = spec("a9a").scaled(100, 1);
    let (train, test) = generate(&ds, 11);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &tc,
        train_v.party_a,
        train_v.party_b,
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    let bytes_a = export_party_a(&outcome.party_a);
    let bytes_b = export_party_b(&outcome.party_b);
    let (store_a, store_b) = (test_v.party_a, test_v.party_b);
    let n = store_b.rows() as u64;
    println!(
        "      AUC {:.3}; A {} bytes, B {} bytes; {n}-row feature store",
        outcome.report.test_metric,
        bytes_a.len(),
        bytes_b.len()
    );

    // Row plans: globally distinct rows so row → bits is
    // single-valued and replay parity can match by row alone. The
    // churn client takes the tail quarter.
    let split = n * 3 / 4;
    let fleet_plans: Vec<Vec<u64>> = (0..CLIENTS as u64)
        .map(|c| (c..split).step_by(CLIENTS).collect())
        .collect();
    let churn_plan: Vec<u64> = (split..n).collect();

    // 2 + 3. Gateway over a replica pool, driven by the fleet.
    println!("[2/4] standing up a {REPLICAS}-replica gateway...");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind front door");
    let addr = listener.local_addr().expect("front-door addr");
    let stop = AtomicBool::new(false);
    let (report, logs) = std::thread::scope(|s| {
        let mut replicas = Vec::new();
        for r in 0..REPLICAS {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            let seed = gateway_replica_seed(SERVE_SEED, r);
            let cfg_a = cfg.clone();
            let bytes_a = bytes_a.clone();
            let store_a = store_a.clone();
            std::thread::Builder::new()
                .name(format!("gw-guest-{r}"))
                .stack_size(16 << 20)
                .spawn_scoped(s, move || {
                    let mut sess =
                        Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, seed))
                            .expect("guest handshake");
                    let mut model = import_party_a(&bytes_a).expect("guest model");
                    serve_party_a(&mut sess, &mut model, &store_a).expect("guest serve loop");
                })
                .expect("spawn guest");
            let sess = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, seed))
                .expect("host handshake");
            let model = import_party_b(&bytes_b).expect("host model");
            replicas.push(GatewayReplica::TwoParty { sess, model });
        }
        let (stop_ref, store_ref) = (&stop, &store_b);
        let gw = std::thread::Builder::new()
            .name("gateway".into())
            .stack_size(16 << 20)
            .spawn_scoped(s, move || {
                run_gateway(
                    listener,
                    replicas,
                    store_ref,
                    &GatewayConfig {
                        max_batch: 8,
                        ..GatewayConfig::default()
                    },
                    stop_ref,
                )
                .expect("gateway")
            })
            .expect("spawn gateway");
        println!("[3/4] driving {CLIENTS} pipelined clients + 1 churn client at {addr}...");
        // Churn client: submits its whole plan, then vanishes without
        // reading a single reply. The gateway must not stall and the
        // other clients' replies must be unaffected.
        let churn = s.spawn(move || {
            let mut client =
                GatewayClient::connect(addr, Duration::from_secs(10)).expect("churn connect");
            for &row in &churn_plan {
                client.submit(row).expect("churn submit");
            }
            std::thread::sleep(Duration::from_millis(2));
            drop(client);
        });
        let fleet: Vec<_> = fleet_plans
            .into_iter()
            .map(|plan| {
                s.spawn(move || {
                    let mut client =
                        GatewayClient::connect(addr, Duration::from_secs(10)).expect("connect");
                    for &row in &plan {
                        client.submit(row).expect("submit");
                    }
                    let mut log: Vec<(u64, Vec<u64>)> = Vec::new();
                    while client.in_flight() > 0 {
                        let (row, reply) = client.recv().expect("recv");
                        let logits = reply.expect("reply was a rejection");
                        log.push((row, logits.iter().map(|v| v.to_bits()).collect()));
                    }
                    log
                })
            })
            .collect();
        let logs: Vec<_> = fleet.into_iter().map(|h| h.join().unwrap()).collect();
        churn.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        (gw.join().expect("gateway thread"), logs)
    });
    println!(
        "      answered {} / orphaned {} / rejected {}; peak in-flight {}; \
         {:.0} req/s sustained, p99 {:.1} ms",
        report.answered,
        report.orphaned,
        report.rejected,
        report.peak_in_flight,
        report.sustained_qps(),
        report.p99_latency_secs() * 1e3,
    );

    // 4. Parity by replay: re-run every replica's exact partitions
    // directly and compare bits.
    println!("[4/4] replaying recorded batch partitions for bit-parity...");
    let mut replayed: HashMap<u64, Vec<u64>> = HashMap::new();
    for (r, rep) in report.replicas.iter().enumerate() {
        let parts: Vec<Vec<usize>> = rep
            .batch_rows
            .iter()
            .map(|p| p.iter().map(|&x| x as usize).collect())
            .collect();
        let bytes_a = bytes_a.clone();
        let store_a = store_a.clone();
        let parts_a = parts.clone();
        let (bytes_b, store_b) = (bytes_b.clone(), store_b.clone());
        let (_, map) = run_pair(
            &cfg,
            gateway_replica_seed(SERVE_SEED, r),
            move |mut sess| {
                let mut model = import_party_a(&bytes_a).expect("replay guest model");
                for p in &parts_a {
                    model
                        .predict_batch(&mut sess, &store_a.select(p))
                        .expect("replay guest forward");
                }
            },
            move |mut sess| {
                let mut model = import_party_b(&bytes_b).expect("replay host model");
                let mut map = HashMap::new();
                for p in &parts {
                    let logits = model
                        .predict_batch(&mut sess, &store_b.select(p))
                        .expect("replay host forward");
                    for (k, &row) in p.iter().enumerate() {
                        let bits: Vec<u64> = logits.row(k).iter().map(|v| v.to_bits()).collect();
                        map.insert(row as u64, bits);
                    }
                }
                map
            },
        );
        replayed.extend(map);
    }
    let mut checked = 0usize;
    for log in &logs {
        for (row, bits) in log {
            assert_eq!(
                bits,
                replayed.get(row).expect("row absent from the replay"),
                "row {row}: gateway bits diverged from the direct forward"
            );
            checked += 1;
        }
    }
    let fleet_total: u64 = (0..CLIENTS as u64)
        .map(|c| (split - c).div_ceil(CLIENTS as u64))
        .sum();
    assert_eq!(checked as u64, fleet_total, "every fleet reply delivered");
    assert_eq!(report.requests(), report.answered + report.orphaned);
    println!(
        "      {checked} replies replayed bit-identical; \
         requests == answered + orphaned: ok"
    );
    println!("\ngateway_serving: OK");
}
