//! Multi-party VFL (paper Appendix C): two feature providers (Party
//! A₁, Party A₂) plus the label holder (Party B) jointly train one
//! linear model with the multi-party MatMul source layer
//! (Algorithm 3). Every Party A runs the unmodified two-party code.
//!
//! ```text
//! cargo run --release -p bf-integration --example multi_party
//! ```

use bf_datagen::{generate, spec};
use bf_ml::data::BatchIter;
use bf_ml::loss::bce_with_logits;
use bf_ml::metrics::auc;
use bf_tensor::{Csr, Features};
use blindfl::config::FedConfig;
use blindfl::multiparty::MultiMatMulB;
use blindfl::session::{Role, Session};
use blindfl::source::matmul::{aggregate_a, MatMulSource};

fn main() {
    let dataset = spec("a9a").scaled(50, 1);
    let (train, test) = generate(&dataset, 31);
    // Split features three ways: A1 | A2 | B.
    let d = train.num_dim();
    let (c1, c2) = (d / 3, 2 * d / 3);
    let split3 = |ds: &bf_ml::Dataset| -> [Features; 3] {
        let Features::Sparse(s) = ds.num.as_ref().unwrap() else {
            panic!("expect sparse")
        };
        let cols = |lo: usize, hi: usize| -> Vec<u32> { (lo as u32..hi as u32).collect() };
        [
            Features::Sparse(s.select_cols(&cols(0, c1))),
            Features::Sparse(s.select_cols(&cols(c1, c2))),
            Features::Sparse(s.select_cols(&cols(c2, d))),
        ]
    };
    let [x1, x2, xb] = split3(&train);
    let [t1, t2, tb] = split3(&test);
    let y: Vec<f64> = train.labels.as_ref().unwrap().as_binary().to_vec();
    let y_test: Vec<f64> = test.labels.as_ref().unwrap().as_binary().to_vec();
    println!(
        "3-party split: A1 {} / A2 {} / B {} features",
        c1,
        c2 - c1,
        d - c2
    );

    let cfg = FedConfig::plain();
    let epochs = 6;
    let bs = 128;
    let n = train.rows();

    // Spawn the two Party A's; each runs the standard two-party loop.
    let mut b_endpoints = Vec::new();
    let mut handles = Vec::new();
    for (i, (x, t)) in [(x1, t1), (x2, t2)].into_iter().enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        b_endpoints.push(ep_b);
        let cfg_a = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, 10 + i as u64).unwrap();
            let mut layer = MatMulSource::init(&mut sess, x.cols(), 1).unwrap();
            for epoch in 0..epochs {
                for idx in BatchIter::new(n, bs, 7 ^ epoch as u64) {
                    let xb = x.select_rows(&idx);
                    let z = layer.forward(&mut sess, &xb, true).unwrap();
                    aggregate_a(&sess, z).unwrap();
                    layer.backward_a(&mut sess).unwrap();
                }
            }
            // Federated inference on the test split.
            let z = layer.forward(&mut sess, &t, false).unwrap();
            aggregate_a(&sess, z).unwrap();
        }));
    }

    // Party B drives the multi-party layer.
    let mut sessions: Vec<Session> = b_endpoints
        .into_iter()
        .enumerate()
        .map(|(i, ep)| Session::handshake(ep, cfg.clone(), Role::B, 20 + i as u64).unwrap())
        .collect();
    let mut layer = MultiMatMulB::init(&mut sessions, xb.cols(), 1).unwrap();
    let mut last_loss = f64::NAN;
    for epoch in 0..epochs {
        for idx in BatchIter::new(n, bs, 7 ^ epoch as u64) {
            let x_batch = xb.select_rows(&idx);
            let y_batch: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
            let z = layer.forward(&mut sessions, &x_batch, true).unwrap();
            let (loss, grad) = bce_with_logits(&z, &y_batch);
            last_loss = loss;
            layer.backward(&mut sessions, &grad).unwrap();
        }
    }
    let z_test = layer.forward(&mut sessions, &tb, false).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    println!("final training loss = {last_loss:.4}");
    println!(
        "3-party federated LR test AUC = {:.3}",
        auc(z_test.data(), &y_test)
    );
    let _ = Csr::from_triplets; // keep Csr import obviously used
}
