//! Multi-**process** multi-guest federated logistic regression (paper
//! Appendix C) over localhost TCP: `M` guest processes (Party A(1..M),
//! feature holders) against one host process (Party B, label holder) —
//! the deployment shape of an M-enterprise VFL job, downscaled to one
//! machine.
//!
//! ```text
//! cargo run --release -p blindfl --example multiparty_lr          # M = 2
//! MULTIPARTY_GUESTS=4 cargo run --release -p blindfl --example multiparty_lr
//! ```
//!
//! With no `--party` argument this binary is the *orchestrator*: it
//!
//! 1. trains the in-process reference (`train_federated_multi`: one
//!    thread per guest over channel pairs),
//! 2. binds a TCP listener and re-launches itself `M` times, each
//!    child playing one guest (`--party a --index i`) that connects
//!    back, announces its link slot with the wire-protocol `Hello`
//!    frame, and runs the unmodified `run_party_a`,
//! 3. accepts the `M` connections *in whatever order they arrive*,
//!    fans them into link order via the hellos, and plays Party B over
//!    the sockets,
//! 4. verifies the multi-process run reproduced the in-process loss
//!    (±1e-6; deterministic seeding makes it exact in practice) and
//!    that the per-link B→A(i) wire traffic matches byte-for-byte.

use std::net::TcpListener;
use std::process::Command;

use bf_datagen::{generate, spec, vsplit_multi, MultiVflData};
use bf_mpc::Endpoint;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::multiparty::{collect_guests, send_hello};
use blindfl::session::{multi_party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b_multi, train_federated_multi, FedTrainConfig};

/// Shared run constants — every process must agree on these for the
/// runs to be comparable (the protocol exchanges no hyper-parameters).
const SEED: u64 = 19;
const DATA_SEED: u64 = 5;

fn guest_count() -> usize {
    std::env::var("MULTIPARTY_GUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn fed_config() -> FedConfig {
    FedConfig::plain()
}

fn train_config() -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

fn fed_spec() -> FedSpec {
    FedSpec::Glm { out: 1 }
}

/// Every process regenerates the identical M-way vertical split
/// (datagen is deterministic in its seed — nothing is shipped).
fn datasets(m: usize) -> (MultiVflData, MultiVflData) {
    let ds = spec("a9a").scaled(200, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    (vsplit_multi(&train, m), vsplit_multi(&test, m))
}

/// Child process: guest `index` — connects out, announces its link
/// slot, holds only its feature slice.
fn run_guest(addr: &str, index: usize, m: usize) {
    let (train_v, test_v) = datasets(m);
    let ep = Endpoint::tcp_connect_retry(addr, std::time::Duration::from_secs(10))
        .expect("connect to host");
    send_hello(&ep, index, m).expect("guest hello");
    let mut sess = Session::handshake(
        ep,
        fed_config(),
        Role::A,
        multi_party_seed(Role::A, index, SEED),
    )
    .expect("guest handshake");
    let run = run_party_a(
        &mut sess,
        &fed_spec(),
        &train_config(),
        &train_v.guests[index],
        &test_v.guests[index],
    )
    .expect("guest run");
    println!(
        "[guest {index}] done; sent {} bytes A({index})→B",
        run.bytes_sent
    );
}

/// Parent process: in-process reference, then host Party B over TCP
/// against the spawned guest processes.
fn orchestrate(m: usize) {
    let (train_v, test_v) = datasets(m);

    println!("== in-process reference (channel transport, M = {m} guests) ==");
    let reference = train_federated_multi(
        &fed_spec(),
        &fed_config(),
        &train_config(),
        train_v.guests.clone(),
        train_v.party_b.clone(),
        test_v.guests.clone(),
        test_v.party_b.clone(),
        SEED,
    );
    let ref_loss = *reference.report.losses.last().unwrap();
    println!(
        "reference final loss = {ref_loss:.6}, AUC = {:.3}",
        reference.report.test_metric
    );

    println!("== {m}-guest multi-process run (TCP transport) ==");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap().to_string();
    let exe = std::env::current_exe().expect("current_exe");
    let mut children: Vec<_> = (0..m)
        .map(|i| {
            Command::new(&exe)
                .args(["--party", "a", "--index", &i.to_string(), "--addr", &addr])
                .env("MULTIPARTY_GUESTS", m.to_string())
                .spawn()
                .expect("spawn guest process")
        })
        .collect();

    // Accept in arrival order; the hellos restore link order.
    let accepted: Vec<Endpoint> = (0..m)
        .map(|_| Endpoint::tcp_accept(&listener).expect("accept guest"))
        .collect();
    let ordered = collect_guests(accepted, m).expect("guest fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(
                ep,
                fed_config(),
                Role::B,
                multi_party_seed(Role::B, i, SEED),
            )
            .expect("host handshake")
        })
        .collect();
    let run = run_party_b_multi(
        &mut sessions,
        &fed_spec(),
        &train_config(),
        &train_v.party_b,
        &test_v.party_b,
    )
    .expect("party B run");
    for (i, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("guest exit");
        assert!(status.success(), "guest process {i} failed: {status}");
    }

    let tcp_loss = *run.losses.last().unwrap();
    println!("multi-process TCP AUC = {:.3}", run.test_metric);

    // Same protocol, same bytes, same model on every link — only the
    // wire changed.
    assert!(
        (tcp_loss - ref_loss).abs() <= 1e-6,
        "TCP loss {tcp_loss} diverged from in-process loss {ref_loss}"
    );
    assert_eq!(
        run.bytes_sent_per_link, reference.report.bytes_b_to_a_per_link,
        "per-link B→A traffic must match the in-process transport exactly"
    );
    for (i, bytes) in run.bytes_sent_per_link.iter().enumerate() {
        println!("traffic parity: B→A({i}) {bytes} bytes (exact match with in-process)");
    }
    println!(
        "multiparty final loss = {tcp_loss:.6} (M={m} guests, matches in-process within 1e-6)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let m = guest_count();
    assert!(m >= 1, "MULTIPARTY_GUESTS must be at least 1");
    match flag("--party").as_deref() {
        Some("a") => {
            let addr = flag("--addr").expect("--party a requires --addr host:port");
            let index: usize = flag("--index")
                .expect("--party a requires --index i")
                .parse()
                .expect("--index must be an integer");
            run_guest(&addr, index, m);
        }
        Some(other) => panic!("unknown --party {other} (only 'a' is launched as a child)"),
        None => orchestrate(m),
    }
}
