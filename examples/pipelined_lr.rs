//! The pipelined mini-batch engine, demonstrated end to end.
//!
//! ```text
//! cargo run --release -p blindfl --example pipelined_lr
//! ```
//!
//! Trains the same federated LR twice over a simulated WAN link
//! (`NetworkProfile::wan_100mbps`): once with the lock-step
//! [`TrainMode::Sync`] loop, once with [`TrainMode::Pipelined`] —
//! transport queue-decoupled onto writer/reader threads, mini-batch
//! preparation double-buffered. The engine's contract is asserted
//! here, not just printed:
//!
//! * **bit-identical** per-batch loss curves and test metric,
//! * **exactly equal** A→B and B→A `TrafficStats` byte counts,
//! * the pipelined run is reported with its wall-clock speedup.

use bf_datagen::{generate, spec, vsplit, VflData};
use bf_mpc::transport::{channel_pair_with_network, NetworkProfile};
use blindfl::config::FedConfig;
use blindfl::engine::TrainMode;
use blindfl::models::FedSpec;
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b, FedTrainConfig, PartyBRun};

const SEED: u64 = 17;
const DATA_SEED: u64 = 5;

fn datasets() -> (VflData, VflData) {
    let ds = spec("a9a").scaled(160, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    (vsplit(&train), vsplit(&test))
}

fn train_config(mode: TrainMode) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 2,
            batch_size: 32,
            ..Default::default()
        },
        snapshot_u_a: false,
        mode,
        ..Default::default()
    }
}

/// One run over an in-process pair with the WAN profile attached.
/// Returns Party B's result, Party A's sent bytes, and wall seconds.
fn run(mode: TrainMode) -> (PartyBRun, u64, f64) {
    let (train_v, test_v) = datasets();
    let (ep_a, ep_b) = channel_pair_with_network(NetworkProfile::wan_100mbps());
    let cfg = FedConfig::plain();
    let tc = train_config(mode);
    let fed = FedSpec::Glm { out: 1 };

    let cfg_a = cfg.clone();
    let tc_a = tc.clone();
    let fed_a = fed.clone();
    let (train_a, test_a) = (train_v.party_a.clone(), test_v.party_a.clone());
    let start = std::time::Instant::now();
    let guest = std::thread::Builder::new()
        .name("pipelined-lr-party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SEED))
                .expect("A handshake");
            run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a)
                .expect("party A run")
                .bytes_sent
        })
        .expect("spawn party A");
    let mut sess =
        Session::handshake(ep_b, cfg, Role::B, party_seed(Role::B, SEED)).expect("B handshake");
    let run_b =
        run_party_b(&mut sess, &fed, &tc, &train_v.party_b, &test_v.party_b).expect("party B run");
    let bytes_a = guest.join().expect("party A thread");
    (run_b, bytes_a, start.elapsed().as_secs_f64())
}

fn main() {
    println!("== federated LR over simulated WAN (100 Mbps, 20 ms) ==");
    println!("-- lock-step (TrainMode::Sync) --");
    let (sync_b, sync_bytes_a, sync_secs) = run(TrainMode::Sync);
    println!(
        "sync: {sync_secs:.2}s wall, AUC = {:.3}",
        sync_b.test_metric
    );

    println!("-- pipelined (TrainMode::Pipelined) --");
    let (pipe_b, pipe_bytes_a, pipe_secs) = run(TrainMode::pipelined());
    println!(
        "pipelined: {pipe_secs:.2}s wall, AUC = {:.3}",
        pipe_b.test_metric
    );

    // The determinism contract, asserted.
    assert_eq!(
        sync_b.losses, pipe_b.losses,
        "loss curves must be bit-identical across modes"
    );
    assert_eq!(sync_b.test_metric, pipe_b.test_metric);
    assert_eq!(
        sync_bytes_a, pipe_bytes_a,
        "A→B traffic must match across modes exactly"
    );
    assert_eq!(
        sync_b.bytes_sent, pipe_b.bytes_sent,
        "B→A traffic must match across modes exactly"
    );

    println!(
        "traffic parity: A→B {sync_bytes_a} bytes, B→A {} bytes (exact across modes)",
        sync_b.bytes_sent
    );
    println!("speedup: {:.2}x wall-clock", sync_secs / pipe_secs);
    let final_loss = sync_b.losses.last().unwrap();
    println!("final loss = {final_loss:.6} (pipelined bit-identical to sync)");
}
