//! Sample alignment end to end: two parties with *misaligned* data —
//! locally-shuffled supersets of a common sample set — run salted-hash
//! PSI over their ID columns, train on the intersection, and land
//! bit-identically on the pre-aligned run. Then the limited-overlap
//! variant: the guest's local StandardScaler+PCA encoder soaks up its
//! unaligned rows before federated training.
//!
//! ```text
//! cargo run --release --example psi_align
//! ```

use bf_datagen::{generate, sample_id, spec, vsplit, vsplit_misaligned};
use bf_ml::TrainConfig;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use blindfl::{train_federated_aligned, LimitedOverlapConfig};

fn main() {
    // 1. Misaligned data: only 60% of the rows are common to both
    //    parties; each holds its share shuffled, keyed by sample IDs.
    let dataset = spec("a9a").scaled(50, 1);
    let (train, test) = generate(&dataset, 42);
    let mis = vsplit_misaligned(&train, 0.6, 42);
    let test_v = vsplit(&test);
    println!(
        "misaligned data: {} rows at A, {} rows at B, {} common",
        mis.party_a.ids.len(),
        mis.party_b.ids.len(),
        mis.overlap_rows.len()
    );

    let cfg = FedConfig::paillier_test();
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs: 3,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let spec_fed = FedSpec::Glm { out: 1 };

    // 2. PSI + federated training in one call: handshake, salted-digest
    //    intersection over the wire, Dataset::select into the shared
    //    canonical order, then the standard BlindFL run.
    let aligned = train_federated_aligned(
        &spec_fed,
        &cfg,
        &tc,
        mis.party_a.data.clone(),
        mis.party_a.ids.clone(),
        mis.party_b.data.clone(),
        mis.party_b.ids.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        None,
        7,
    );
    println!(
        "PSI-aligned run   test AUC = {:.3}   ({} aligned rows, {:.1} KiB of PSI traffic)",
        aligned.report.test_metric,
        aligned.align_a.len(),
        (aligned.align_a.psi_bytes_sent + aligned.align_b.psi_bytes_sent) as f64 / 1024.0,
    );

    // 3. The oracle: the same training run on the pre-aligned split of
    //    exactly the overlap rows. Bit-identical losses and metric —
    //    PSI changes *what* is trained on, never the math.
    let reference = train_federated(
        &spec_fed,
        &cfg,
        &tc,
        mis.aligned.party_a.clone(),
        mis.aligned.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        7,
    );
    let parity = aligned.report.losses == reference.report.losses
        && aligned.report.test_metric == reference.report.test_metric;
    println!(
        "pre-aligned run   test AUC = {:.3}   (bit parity: {parity})",
        reference.report.test_metric
    );

    // 4. Sanity: the intersection is exactly the planted overlap.
    let want: Vec<u64> = mis.overlap_rows.iter().map(|&r| sample_id(r)).collect();
    let intersection_ok = aligned.align_a.ids == want && aligned.align_b.ids == want;

    // 5. Limited overlap (Sun et al.): the guest first fits a local
    //    encoder on ALL of its rows — the 40% outside the intersection
    //    included — and the federated run trains on encoded features.
    let encoded = train_federated_aligned(
        &spec_fed,
        &cfg,
        &tc,
        mis.party_a.data.clone(),
        mis.party_a.ids.clone(),
        mis.party_b.data.clone(),
        mis.party_b.ids.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        Some(&LimitedOverlapConfig::default()),
        7,
    );
    println!(
        "limited-overlap   test AUC = {:.3}   (encoder {}→{} dims)",
        encoded.report.test_metric,
        encoded.encoder.as_ref().map_or(0, |e| e.input_dim()),
        encoded.encoder.as_ref().map_or(0, |e| e.dim()),
    );

    assert!(parity, "PSI-aligned run diverged from the pre-aligned run");
    assert!(intersection_ok, "intersection differs from planted overlap");
    println!("\npsi_align: OK (bit parity with pre-aligned training)");
}
