//! Quickstart: train a federated logistic regression over a vertically
//! split dataset with real Paillier encryption, then compare against
//! the two non-federated baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bf_datagen::{generate, spec, vsplit};
use bf_ml::{GlmModel, TrainConfig};
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};
use rand::SeedableRng;

fn main() {
    // 1. Data: a synthetic stand-in for the paper's `a9a` (Table 4
    //    shape statistics), split vertically — Party A gets the first
    //    half of the features, Party B the second half plus the labels.
    let dataset = spec("a9a").scaled(50, 1);
    let (train, test) = generate(&dataset, 42);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    println!(
        "dataset: {} train rows, {} features ({} at A, {} at B)",
        train.rows(),
        train.num_dim(),
        train_v.party_a.num_dim(),
        train_v.party_b.num_dim()
    );

    // 2. Federated training: MatMul source layer + bias top, with a
    //    real (test-size) Paillier key pair. Use
    //    `FedConfig::paillier_default()` for 512-bit keys or
    //    `FedConfig::plain()` for fast functional runs.
    let cfg = FedConfig::paillier_test();
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs: 3,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    println!("training BlindFL LR (Paillier, {:?})...", cfg.backend);
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        7,
    );
    println!(
        "BlindFL           test AUC = {:.3}   ({} batches, {:.1}s, {:.1} MiB exchanged)",
        outcome.report.test_metric,
        outcome.report.losses.len(),
        outcome.report.train_secs,
        (outcome.report.bytes_a_to_b + outcome.report.bytes_b_to_a) as f64 / (1 << 20) as f64,
    );

    // 3. Baselines.
    let base = TrainConfig {
        epochs: 3,
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut mb = GlmModel::new(&mut rng, train_v.party_b.num_dim(), 1);
    let rb = bf_ml::train(&mut mb, &train_v.party_b, &test_v.party_b, &base);
    println!("NonFed-Party B    test AUC = {:.3}", rb.test_metric);
    let mut mc = GlmModel::new(&mut rng, train.num_dim(), 1);
    let rc = bf_ml::train(&mut mc, &train, &test, &base);
    println!("NonFed-collocated test AUC = {:.3}", rc.test_metric);

    println!("\nExpected: BlindFL ≈ collocated (lossless) and > Party-B-only.");
}
