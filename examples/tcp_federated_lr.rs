//! Two-**process** federated logistic regression over localhost TCP —
//! the deployment shape the paper assumes (two enterprises, one
//! network link), downscaled to one machine.
//!
//! ```text
//! cargo run --release -p blindfl --example tcp_federated_lr
//! ```
//!
//! With no arguments this binary is the *orchestrator*: it
//!
//! 1. trains the in-process reference (both parties as threads over a
//!    channel pair),
//! 2. binds a TCP listener, re-launches itself as a child process that
//!    plays the guest (Party A, feature holder) and connects back,
//! 3. plays the host (Party B, label holder) over the accepted socket,
//! 4. verifies the two-process run reproduced the in-process loss
//!    (±1e-6; deterministic seeding makes it exact in practice) and
//!    that the wire traffic matches byte-for-byte.
//!
//! The child invocation is `--party a --addr <host:port>`; point it at
//! a remote machine to run the parties on two real hosts (both sides
//! must use the same dataset constants and seed below).

use std::net::TcpListener;
use std::process::Command;

use bf_datagen::{generate, spec, vsplit, VflData};
use bf_mpc::Endpoint;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b, train_federated, FedTrainConfig};

/// Shared run constants — every process must agree on these for the
/// runs to be comparable (the protocol exchanges no hyper-parameters).
const SEED: u64 = 17;
const DATA_SEED: u64 = 11;

fn fed_config() -> FedConfig {
    FedConfig::plain()
}

fn train_config() -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
        snapshot_u_a: false,
        // Chaos drills: `BF_FAULT=kill@N|drop@N|delay@N:MS` injects a
        // scripted failure into whichever process it is set for
        // (unset ⇒ fault-free; see `bf_mpc::fault`).
        fault: bf_mpc::FaultPlan::from_env(),
        ..Default::default()
    }
}

fn fed_spec() -> FedSpec {
    FedSpec::Glm { out: 1 }
}

/// Both processes regenerate the identical vertical split (datagen is
/// deterministic in its seed — nothing needs to be shipped).
fn datasets() -> (VflData, VflData) {
    let ds = spec("a9a").scaled(200, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    (vsplit(&train), vsplit(&test))
}

/// Child process: Party A (guest) — connects out, holds features only.
fn run_guest(addr: &str) {
    let (train_v, test_v) = datasets();
    let ep = Endpoint::tcp_connect_retry(addr, std::time::Duration::from_secs(10))
        .expect("connect to host");
    let mut sess = Session::handshake(ep, fed_config(), Role::A, party_seed(Role::A, SEED))
        .expect("guest handshake");
    let run = run_party_a(
        &mut sess,
        &fed_spec(),
        &train_config(),
        &train_v.party_a,
        &test_v.party_a,
    )
    .expect("party A run");
    println!("[guest] done; sent {} bytes A→B", run.bytes_sent);
}

/// Parent process: in-process reference, then host Party B over TCP
/// against the spawned guest.
fn orchestrate() {
    let (train_v, test_v) = datasets();

    println!("== in-process reference (channel transport) ==");
    // The reference stays fault-free even under a `BF_FAULT` drill —
    // the env var is process-wide, but the drill targets the party
    // runs below, and the reference must survive to compare against.
    let reference_tc = FedTrainConfig {
        fault: None,
        ..train_config()
    };
    let reference = train_federated(
        &fed_spec(),
        &fed_config(),
        &reference_tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        SEED,
    );
    let ref_loss = *reference.report.losses.last().unwrap();
    println!(
        "reference final loss = {ref_loss:.6}, AUC = {:.3}",
        reference.report.test_metric
    );

    println!("== two-process run (TCP transport) ==");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap().to_string();
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .args(["--party", "a", "--addr", &addr])
        .spawn()
        .expect("spawn guest process");

    let ep = Endpoint::tcp_accept(&listener).expect("accept guest");
    let mut sess = Session::handshake(ep, fed_config(), Role::B, party_seed(Role::B, SEED))
        .expect("host handshake");
    let run = run_party_b(
        &mut sess,
        &fed_spec(),
        &train_config(),
        &train_v.party_b,
        &test_v.party_b,
    )
    .expect("party B run");
    let status = child.wait().expect("guest exit");
    assert!(status.success(), "guest process failed: {status}");

    let tcp_loss = *run.losses.last().unwrap();
    println!("[host] sent {} bytes B→A", run.bytes_sent);
    println!("two-process TCP AUC = {:.3}", run.test_metric);

    // The whole point: same protocol, same bytes, same model — only
    // the wire changed.
    assert!(
        (tcp_loss - ref_loss).abs() <= 1e-6,
        "TCP loss {tcp_loss} diverged from in-process loss {ref_loss}"
    );
    assert_eq!(
        run.bytes_sent, reference.report.bytes_b_to_a,
        "B→A traffic must match the in-process transport exactly"
    );
    println!(
        "traffic parity: B→A {} bytes (exact match with in-process)",
        run.bytes_sent
    );
    println!("final loss = {tcp_loss:.6} (matches in-process within 1e-6)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    match flag("--party").as_deref() {
        Some("a") => {
            let addr = flag("--addr").expect("--party a requires --addr host:port");
            run_guest(&addr);
        }
        Some(other) => panic!("unknown --party {other} (only 'a' is launched as a child)"),
        None => orchestrate(),
    }
}
