//! The full model life cycle as two OS processes: **train → persist →
//! serve** over localhost TCP (see `docs/SERVING.md`).
//!
//! ```text
//! cargo run --release -p blindfl --example tcp_serving
//! ```
//!
//! With no arguments this binary is the *orchestrator*: it
//!
//! 1. trains a federated LR in process and **persists** both model
//!    halves through the `blindfl::persist` byte format (Party A's
//!    blob goes to a file, exactly what a guest deployment would
//!    ship to its serving node),
//! 2. runs the in-process serve reference: the micro-batching queue
//!    with every request pre-enqueued, so the coalesced batches are
//!    deterministic,
//! 3. re-launches itself as a child process that plays the guest
//!    serving node (loads the model file, connects back, runs
//!    `serve_party_a`), serves the same requests over TCP, and
//!    asserts the answers are **bit-identical** with **byte-identical
//!    B→A traffic** — the serving equivalence contract,
//! 4. serves a second TCP session under concurrent client threads and
//!    reports throughput, latency and batch shape.
//!
//! The child invocation is `--party a --addr <host:port> --model
//! <path>`; point it at a remote machine to serve across two real
//! hosts (both sides must use the same dataset constants and seed
//! below).

use std::net::TcpListener;
use std::process::Command;

use bf_datagen::{generate, spec, vsplit, VflData};
use bf_mpc::Endpoint;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::persist::{export_party_a, export_party_b, import_party_a, import_party_b};
use blindfl::serve::{self, serve_party_a, serve_party_b, ServeConfig, ServeReport};
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{train_federated, FedTrainConfig};

/// Shared run constants — every process must agree on these (the
/// serve protocol exchanges row indices, never features or configs).
const TRAIN_SEED: u64 = 29;
const SERVE_SEED: u64 = 31;
const DATA_SEED: u64 = 11;
const BATCH: usize = 8;

fn fed_config() -> FedConfig {
    FedConfig::plain()
}

fn datasets() -> (VflData, VflData) {
    let ds = spec("a9a").scaled(200, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    (vsplit(&train), vsplit(&test))
}

/// Child process: the guest serving node. Loads the persisted Party A
/// model, connects to the host, serves until shutdown.
fn run_guest(addr: &str, model_path: &str) {
    let (_, test_v) = datasets();
    let bytes = std::fs::read(model_path).expect("read persisted model");
    let mut model = import_party_a(&bytes).expect("import persisted model");
    let ep = Endpoint::tcp_connect_retry(addr, std::time::Duration::from_secs(10))
        .expect("connect to host");
    let mut sess = Session::handshake(ep, fed_config(), Role::A, party_seed(Role::A, SERVE_SEED))
        .expect("guest handshake");
    let report = serve_party_a(&mut sess, &mut model, &test_v.party_a).expect("guest serve loop");
    println!(
        "[guest] served {} rows in {} batches; sent {} bytes A→B",
        report.rows, report.batches, report.bytes_sent
    );
}

/// Serve `rows` pre-enqueued requests through the micro-batching queue
/// over the given endpoint; returns (per-row logit bits, report).
fn serve_preenqueued(
    ep: Endpoint,
    model_bytes: &[u8],
    store: &bf_ml::Dataset,
    n: usize,
) -> (Vec<u64>, ServeReport) {
    let mut sess = Session::handshake(ep, fed_config(), Role::B, party_seed(Role::B, SERVE_SEED))
        .expect("host handshake");
    let mut model = import_party_b(model_bytes).expect("import host model");
    let (client, queue) = serve::queue(n);
    let pending: Vec<_> = (0..n).map(|r| client.submit(r).expect("submit")).collect();
    drop(client);
    let report = serve_party_b(
        &mut sess,
        &mut model,
        store,
        &ServeConfig { max_batch: BATCH },
        queue,
    )
    .expect("host serve loop");
    let bits = pending
        .into_iter()
        .flat_map(|p| p.wait().expect("prediction").logits)
        .map(f64::to_bits)
        .collect();
    (bits, report)
}

/// Parent process: train + persist, in-process serve reference, then
/// the two-process TCP serve runs.
fn orchestrate() {
    let (train_v, test_v) = datasets();
    let n = test_v.party_b.rows();

    println!("== train + persist ==");
    let tc = FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &fed_config(),
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    let model_a = export_party_a(&outcome.party_a);
    let model_b = export_party_b(&outcome.party_b);
    println!(
        "trained AUC = {:.3}; persisted A half: {} bytes, B half: {} bytes",
        outcome.report.test_metric,
        model_a.len(),
        model_b.len()
    );
    let model_path =
        std::env::temp_dir().join(format!("blindfl-serve-a-{}.bfmd", std::process::id()));
    std::fs::write(&model_path, &model_a).expect("write model file");

    println!("== in-process serve reference ==");
    let (ref_bits, ref_report) = {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        let cfg = fed_config();
        let store_a = test_v.party_a.clone();
        let bytes = model_a.clone();
        let guest = std::thread::Builder::new()
            .name("ref-guest".into())
            .stack_size(16 << 20)
            .spawn(move || {
                let mut sess =
                    Session::handshake(ep_a, cfg, Role::A, party_seed(Role::A, SERVE_SEED))
                        .expect("ref guest handshake");
                let mut model = import_party_a(&bytes).expect("ref guest model");
                serve_party_a(&mut sess, &mut model, &store_a).expect("ref guest serve")
            })
            .expect("spawn ref guest");
        let out = serve_preenqueued(ep_b, &model_b, &test_v.party_b, n);
        guest.join().expect("ref guest thread");
        out
    };
    println!(
        "reference: {} requests in {} batches, {} bytes B→A",
        ref_report.requests, ref_report.batches, ref_report.bytes_sent
    );

    println!("== two-process serve (TCP) ==");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap().to_string();
    let exe = std::env::current_exe().expect("current_exe");
    let spawn_guest = || {
        Command::new(&exe)
            .args(["--party", "a", "--addr", &addr])
            .arg("--model")
            .arg(&model_path)
            .spawn()
            .expect("spawn guest serving process")
    };

    let mut child = spawn_guest();
    let ep = Endpoint::tcp_accept(&listener).expect("accept guest");
    let (tcp_bits, tcp_report) = serve_preenqueued(ep, &model_b, &test_v.party_b, n);
    assert!(child.wait().expect("guest exit").success(), "guest failed");

    // The serving equivalence contract: moving the guest to its own
    // process over sockets changes nothing observable.
    assert_eq!(tcp_bits, ref_bits, "TCP-served logits diverged");
    assert_eq!(
        tcp_report.bytes_sent, ref_report.bytes_sent,
        "B→A serve traffic must match the in-process reference exactly"
    );

    println!("== concurrent clients over TCP ==");
    let mut child = spawn_guest();
    let ep = Endpoint::tcp_accept(&listener).expect("accept guest");
    let mut sess = Session::handshake(ep, fed_config(), Role::B, party_seed(Role::B, SERVE_SEED))
        .expect("host handshake");
    let mut model = import_party_b(&model_b).expect("import host model");
    let (client, queue) = serve::queue(n);
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let client = client.clone();
            std::thread::spawn(move || {
                for k in 0..n / 4 {
                    let pred = client.predict((c * (n / 4) + k) % n).expect("prediction");
                    assert_eq!(pred.logits.len(), 1);
                }
            })
        })
        .collect();
    drop(client);
    let live = serve_party_b(
        &mut sess,
        &mut model,
        &test_v.party_b,
        &ServeConfig { max_batch: BATCH },
        queue,
    )
    .expect("host serve loop");
    for c in clients {
        c.join().expect("client thread");
    }
    assert!(child.wait().expect("guest exit").success(), "guest failed");
    println!(
        "live session: {} requests in {} batches (max batch {}), mean latency {:.2} ms",
        live.requests,
        live.batches,
        live.max_batch(),
        live.mean_latency_secs() * 1e3
    );

    let _ = std::fs::remove_file(&model_path);
    println!(
        "predictions served: {} over TCP (bit-exact parity with the in-process serve reference)",
        tcp_report.requests
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    match flag("--party").as_deref() {
        Some("a") => {
            let addr = flag("--addr").expect("--party a requires --addr host:port");
            let model = flag("--model").expect("--party a requires --model path");
            run_guest(&addr, &model);
        }
        Some(other) => panic!("unknown --party {other} (only 'a' is launched as a child)"),
        None => orchestrate(),
    }
}
