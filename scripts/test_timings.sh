#!/usr/bin/env bash
# Run every workspace crate's test suite once, timing each, and print a
# slowest-first table so creeping test cost is visible in CI logs. This
# IS the CI test gate (equivalent coverage to `cargo test --workspace`,
# run per crate): a suite failure prints that suite's output and fails
# the script.
#
# Set TIMINGS_OUT=<path> to also write the table there in a stable
# tab-separated form (seconds<TAB>suite), so CI can upload it as an
# artifact and runs can be diffed across commits.
set -euo pipefail
cd "$(dirname "$0")/.."

# Workspace members, from cargo itself (not manifest text parsing, so
# member renames / glob members cannot silently empty the list).
meta=$(cargo metadata --no-deps --format-version 1)
if command -v jq >/dev/null 2>&1; then
    members=$(printf '%s' "$meta" | jq -r '.packages[].name')
else
    members=$(printf '%s' "$meta" | python3 -c \
        'import json,sys; print("\n".join(p["name"] for p in json.load(sys.stdin)["packages"]))')
fi

count=0
times=$(mktemp)
log=$(mktemp)
trap 'rm -f "$times" "$log"' EXIT
for name in $members; do
    start=$(date +%s.%N)
    if ! cargo test -q -p "$name" >"$log" 2>&1; then
        echo "=== FAILED: $name ===" >&2
        cat "$log" >&2
        exit 1
    fi
    end=$(date +%s.%N)
    count=$((count + 1))
    awk -v s="$start" -v e="$end" -v n="$name" \
        'BEGIN { printf "%9.2f  %s\n", e - s, n }' >>"$times"
done

# Guard against a parsing regression silently testing nothing: this
# workspace has 16 members and only ever grows.
if [ "$count" -lt 10 ]; then
    echo "only $count test suites ran — member discovery is broken" >&2
    exit 1
fi

echo "per-suite test timings ($count suites, seconds, slowest first):"
sort -rn "$times"

if [ -n "${TIMINGS_OUT:-}" ]; then
    sort -rn "$times" | awk '{ printf "%s\t%s\n", $1, $2 }' >"$TIMINGS_OUT"
    echo "timings artifact written to $TIMINGS_OUT"
fi
