//! The alignment-parity suite: PSI-aligned training must be **exactly**
//! pre-aligned training.
//!
//! Each cell of the matrix
//! `{two-party, M = 2 multi-guest} × {Plain, Paillier/Packed} ×
//! {in-process, TCP}` does the same experiment:
//!
//! 1. build a *misaligned* split ([`vsplit_misaligned`]): each party
//!    holds a locally-shuffled superset of a common sample set, plus a
//!    sample-ID column;
//! 2. run the **pre-aligned baseline** — the vanilla entry points over
//!    `mis.aligned`, the ground-truth `vsplit` of exactly the overlap
//!    rows in canonical (ascending-ID) order;
//! 3. run the **PSI-aligned** entry points over the shuffled supersets
//!    and the raw ID columns;
//! 4. assert the aligned run is **bit-identical** to the baseline —
//!    the full per-batch loss curve, the test metric, the exported
//!    model bytes of every party — and that its traffic is *exactly*
//!    `baseline + PSI`: subtracting each link's measured
//!    `psi_bytes_sent` from the aligned totals reproduces the
//!    baseline totals to the byte, in both directions.
//!
//! Two more contracts ride along:
//!
//! * **Permutation invariance** (proptest) — shuffling any party's
//!   local rows (features and ID column together) changes nothing:
//!   not the losses, not the models, and not even the wire byte
//!   totals, because the PSI digest sets are canonical ascending on
//!   the wire.
//! * **Reconnect accounting** — severing the link right after the PSI
//!   offer forces the transport's resume/replay machinery to carry
//!   PSI frames across a reconnect; [`bf_mpc::TrafficStats`] must
//!   count them exactly once (replay bypasses stats), so a severed
//!   run's totals equal an unsevered run's.
//!
//! The PSI core (digests, intersection, wire frames) is
//! property-tested against a `HashSet` oracle in `bf-mpc`; the
//! misaligned data generator against its own oracle in `bf-datagen`;
//! checkpoint/resume *through* an aligned run in
//! `tests/chaos_parity.rs`.

use std::net::TcpListener;
use std::sync::{mpsc, Arc, OnceLock};

use bf_datagen::{
    generate, sample_id, spec as dataset_spec, vsplit, vsplit_misaligned, vsplit_misaligned_multi,
    vsplit_multi, MisalignedParty,
};
use bf_ml::data::Dataset;
use bf_mpc::psi::{psi_guest, salted_digests, select_common};
use bf_mpc::transport::{Msg, Redial, RetryPolicy};
use bf_mpc::Endpoint;
use proptest::prelude::*;

use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::multiparty::{collect_guests, send_hello};
use blindfl::persist::{export_multi_party_b, export_party_a, export_party_b};
use blindfl::session::{multi_party_seed, party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b, run_party_b_multi, FedTrainConfig};
use blindfl::Alignment;
use blindfl::{psi_salt, run_party_a_aligned, run_party_b_aligned, run_party_b_multi_aligned};

const SEED: u64 = 31;
const DATA_SEED: u64 = 23;
const EPOCHS: usize = 2;
/// Overlap fraction of the misaligned splits: half the rows are
/// common, the rest are dealt out as disjoint private remainders.
const OVERLAP: f64 = 0.5;

fn base_tc(bs: usize) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: EPOCHS,
            batch_size: bs,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

/// Everything a completed run produces, reduced to the bit-comparable
/// facts (same shape as the chaos suite's).
#[derive(PartialEq, Debug)]
struct CellRun {
    losses: Vec<f64>,
    metric: f64,
    /// A→B bytes per link (one entry in the two-party cells).
    bytes_a: Vec<u64>,
    /// B→A bytes per link.
    bytes_b: Vec<u64>,
    /// Exported model bytes per guest, in link order.
    models_a: Vec<Vec<u8>>,
    /// Exported Party B model bytes.
    model_b: Vec<u8>,
}

impl CellRun {
    /// The run with each link's PSI bytes subtracted from its traffic
    /// totals — what must equal the pre-aligned baseline to the byte.
    fn minus_psi(mut self, psi_a: &[u64], psi_b: &[u64]) -> CellRun {
        assert_eq!(self.bytes_a.len(), psi_a.len());
        assert_eq!(self.bytes_b.len(), psi_b.len());
        for (total, psi) in self.bytes_a.iter_mut().zip(psi_a) {
            *total -= psi;
        }
        for (total, psi) in self.bytes_b.iter_mut().zip(psi_b) {
            *total -= psi;
        }
        self
    }
}

/// Duplex endpoints for one link over the chosen transport.
fn endpoints(tcp: bool) -> (Endpoint, Endpoint) {
    if !tcp {
        return bf_mpc::channel_pair();
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || Endpoint::tcp_connect(addr).expect("connect"));
    let b = Endpoint::tcp_accept(&listener).expect("accept");
    (t.join().expect("connect thread"), b)
}

/// One two-party run: Party A's closure on a 16 MB-stack thread,
/// Party B's on the caller's. Both sessions handshake from the same
/// `(cfg, role, SEED)` the baseline uses, so mask streams match.
fn run_pair_over<RA, RB>(
    cfg: &FedConfig,
    tcp: bool,
    fa: impl FnOnce(&mut Session) -> RA + Send + 'static,
    fb: impl FnOnce(&mut Session) -> RB,
) -> (RA, RB)
where
    RA: Send + 'static,
{
    let (ep_a, ep_b) = endpoints(tcp);
    let cfg_a = cfg.clone();
    let guest = std::thread::Builder::new()
        .name("parity-party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SEED))
                .expect("A handshake");
            fa(&mut sess)
        })
        .expect("spawn party A");
    let mut sess_b = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SEED))
        .expect("B handshake");
    let rb = fb(&mut sess_b);
    (guest.join().expect("party A panicked"), rb)
}

fn two_party_baseline(
    cfg: &FedConfig,
    tcp: bool,
    tc: &FedTrainConfig,
    train_a: Dataset,
    train_b: &Dataset,
    test_a: Dataset,
    test_b: &Dataset,
) -> CellRun {
    let fed = FedSpec::Glm { out: 1 };
    let (fed_a, tc_a) = (fed.clone(), tc.clone());
    let (a, b) = run_pair_over(
        cfg,
        tcp,
        move |sess| run_party_a(sess, &fed_a, &tc_a, &train_a, &test_a).expect("baseline A"),
        |sess| run_party_b(sess, &fed, tc, train_b, test_b).expect("baseline B"),
    );
    CellRun {
        losses: b.losses,
        metric: b.test_metric,
        bytes_a: vec![a.bytes_sent],
        bytes_b: vec![b.bytes_sent],
        models_a: vec![export_party_a(&a.model)],
        model_b: export_party_b(&b.model),
    }
}

fn two_party_aligned(
    cfg: &FedConfig,
    tcp: bool,
    tc: &FedTrainConfig,
    party_a: MisalignedParty,
    party_b: &MisalignedParty,
    test_a: Dataset,
    test_b: &Dataset,
) -> (CellRun, Alignment, Alignment) {
    let fed = FedSpec::Glm { out: 1 };
    let salt = psi_salt(SEED);
    let (fed_a, tc_a) = (fed.clone(), tc.clone());
    let ((align_a, a), (align_b, b)) = run_pair_over(
        cfg,
        tcp,
        move |sess| {
            run_party_a_aligned(sess, &fed_a, &tc_a, &party_a.data, &test_a, &party_a.ids)
                .expect("aligned A")
        },
        |sess| {
            run_party_b_aligned(sess, &fed, tc, &party_b.data, test_b, salt, &party_b.ids)
                .expect("aligned B")
        },
    );
    let run = CellRun {
        losses: b.losses,
        metric: b.test_metric,
        bytes_a: vec![a.bytes_sent],
        bytes_b: vec![b.bytes_sent],
        models_a: vec![export_party_a(&a.model)],
        model_b: export_party_b(&b.model),
    };
    (run, align_a, align_b)
}

/// The full parity experiment for one two-party cell.
fn assert_two_party_parity(cfg: FedConfig, row_div: usize, bs: usize, tcp: bool) {
    let ds = dataset_spec("a9a").scaled(row_div, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let mis = vsplit_misaligned(&train, OVERLAP, DATA_SEED);
    let test_v = vsplit(&test);
    let tc = base_tc(bs);

    let baseline = two_party_baseline(
        &cfg,
        tcp,
        &tc,
        mis.aligned.party_a.clone(),
        &mis.aligned.party_b,
        test_v.party_a.clone(),
        &test_v.party_b,
    );
    let (aligned, align_a, align_b) = two_party_aligned(
        &cfg,
        tcp,
        &tc,
        mis.party_a.clone(),
        &mis.party_b,
        test_v.party_a.clone(),
        &test_v.party_b,
    );

    // PSI found exactly the planted overlap, in canonical order, on
    // both sides — and it cost real bytes in both directions.
    let want_ids: Vec<u64> = mis.overlap_rows.iter().map(|&r| sample_id(r)).collect();
    assert_eq!(align_a.ids, want_ids, "guest intersection");
    assert_eq!(align_b.ids, want_ids, "host intersection");
    assert!(align_a.psi_bytes_sent > 0 && align_b.psi_bytes_sent > 0);

    // Bit-identity: same losses, metric, models; traffic is exactly
    // baseline + PSI per direction.
    let net = aligned.minus_psi(&[align_a.psi_bytes_sent], &[align_b.psi_bytes_sent]);
    assert_eq!(net, baseline, "PSI-aligned run diverged from pre-aligned");
}

#[test]
fn two_party_plain_in_process_psi_matches_pre_aligned() {
    assert_two_party_parity(FedConfig::plain(), 256, 16, false);
}

#[test]
fn two_party_plain_tcp_psi_matches_pre_aligned() {
    assert_two_party_parity(FedConfig::plain(), 256, 16, true);
}

#[test]
fn two_party_paillier_packed_in_process_psi_matches_pre_aligned() {
    assert_two_party_parity(FedConfig::paillier_test(), 1024, 4, false);
}

#[test]
fn two_party_paillier_packed_tcp_psi_matches_pre_aligned() {
    assert_two_party_parity(FedConfig::paillier_test(), 1024, 4, true);
}

/// One M-guest run: guests on threads, Party B via the supplied
/// closure on the caller's thread.
fn run_multi_over<RA, RB, FA>(
    cfg: &FedConfig,
    m: usize,
    tcp: bool,
    fas: Vec<FA>,
    fb: impl FnOnce(&mut [Session]) -> RB,
) -> (Vec<RA>, RB)
where
    RA: Send + 'static,
    FA: FnOnce(&mut Session) -> RA + Send + 'static,
{
    assert_eq!(fas.len(), m);
    let listener = tcp.then(|| TcpListener::bind("127.0.0.1:0").expect("bind localhost"));
    let addr = listener.as_ref().map(|l| l.local_addr().unwrap());
    let mut host_eps = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for (i, fa) in fas.into_iter().enumerate() {
        let ep_a = match addr {
            Some(addr) => Endpoint::tcp_connect(addr).expect("guest connect"),
            None => {
                let (ea, eb) = bf_mpc::channel_pair();
                host_eps.push(eb);
                ea
            }
        };
        let cfg_a = cfg.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("parity-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, m).expect("guest hello");
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, SEED),
                    )
                    .expect("guest handshake");
                    fa(&mut sess)
                })
                .expect("spawn guest"),
        );
    }
    if let Some(listener) = &listener {
        host_eps = (0..m)
            .map(|_| Endpoint::tcp_accept(listener).expect("accept"))
            .collect();
    }
    let ordered = collect_guests(host_eps, m).expect("guest fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, SEED))
                .expect("host handshake")
        })
        .collect();
    let rb = fb(&mut sessions);
    drop(sessions);
    let ras = handles
        .into_iter()
        .map(|h| h.join().expect("guest panicked"))
        .collect();
    (ras, rb)
}

/// The full parity experiment for one M = 2 multi-guest cell.
fn assert_multi_parity(cfg: FedConfig, row_div: usize, bs: usize, tcp: bool) {
    const M: usize = 2;
    let ds = dataset_spec("a9a").scaled(row_div, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let mis = vsplit_misaligned_multi(&train, M, OVERLAP, DATA_SEED);
    let test_v = vsplit_multi(&test, M);
    let fed = FedSpec::Glm { out: 1 };
    let tc = base_tc(bs);

    // Pre-aligned baseline over the ground-truth overlap views.
    let fas: Vec<_> = mis
        .aligned
        .guests
        .iter()
        .cloned()
        .zip(test_v.guests.iter().cloned())
        .map(|(train_a, test_a)| {
            let (fed_a, tc_a) = (fed.clone(), tc.clone());
            move |sess: &mut Session| {
                run_party_a(sess, &fed_a, &tc_a, &train_a, &test_a).expect("baseline guest")
            }
        })
        .collect();
    let (guests, b) = run_multi_over(&cfg, M, tcp, fas, |sessions| {
        run_party_b_multi(sessions, &fed, &tc, &mis.aligned.party_b, &test_v.party_b)
            .expect("baseline B")
    });
    let baseline = CellRun {
        losses: b.losses,
        metric: b.test_metric,
        bytes_a: guests.iter().map(|g| g.bytes_sent).collect(),
        bytes_b: b.bytes_sent_per_link.clone(),
        models_a: guests.iter().map(|g| export_party_a(&g.model)).collect(),
        model_b: export_multi_party_b(&b.model),
    };

    // PSI-aligned run over the shuffled supersets.
    let salt = psi_salt(SEED);
    let fas: Vec<_> = mis
        .guests
        .iter()
        .cloned()
        .zip(test_v.guests.iter().cloned())
        .map(|(party, test_a)| {
            let (fed_a, tc_a) = (fed.clone(), tc.clone());
            move |sess: &mut Session| {
                run_party_a_aligned(sess, &fed_a, &tc_a, &party.data, &test_a, &party.ids)
                    .expect("aligned guest")
            }
        })
        .collect();
    let (guest_runs, (align_b, psi_b_per_link, b)) =
        run_multi_over(&cfg, M, tcp, fas, |sessions| {
            run_party_b_multi_aligned(
                sessions,
                &fed,
                &tc,
                &mis.party_b.data,
                &test_v.party_b,
                salt,
                &mis.party_b.ids,
            )
            .expect("aligned B")
        });
    let (guest_aligns, guests): (Vec<Alignment>, Vec<_>) = guest_runs.into_iter().unzip();
    let aligned = CellRun {
        losses: b.losses,
        metric: b.test_metric,
        bytes_a: guests.iter().map(|g| g.bytes_sent).collect(),
        bytes_b: b.bytes_sent_per_link.clone(),
        models_a: guests.iter().map(|g| export_party_a(&g.model)).collect(),
        model_b: export_multi_party_b(&b.model),
    };

    // The global intersection (host ∩ every guest) is the planted
    // overlap, identical on all M + 1 parties.
    let want_ids: Vec<u64> = mis.overlap_rows.iter().map(|&r| sample_id(r)).collect();
    assert_eq!(align_b.ids, want_ids, "host intersection");
    for (i, a) in guest_aligns.iter().enumerate() {
        assert_eq!(a.ids, want_ids, "guest {i} intersection");
        assert!(a.psi_bytes_sent > 0, "guest {i} PSI cost");
    }
    // The host's total PSI cost is the sum of its per-link costs.
    assert_eq!(align_b.psi_bytes_sent, psi_b_per_link.iter().sum::<u64>());

    let psi_a: Vec<u64> = guest_aligns.iter().map(|a| a.psi_bytes_sent).collect();
    let net = aligned.minus_psi(&psi_a, &psi_b_per_link);
    assert_eq!(net, baseline, "PSI-aligned run diverged from pre-aligned");
}

#[test]
fn multi_guest_plain_in_process_psi_matches_pre_aligned() {
    assert_multi_parity(FedConfig::plain(), 256, 16, false);
}

#[test]
fn multi_guest_plain_tcp_psi_matches_pre_aligned() {
    assert_multi_parity(FedConfig::plain(), 256, 16, true);
}

#[test]
fn multi_guest_paillier_packed_in_process_psi_matches_pre_aligned() {
    assert_multi_parity(FedConfig::paillier_test(), 1024, 4, false);
}

#[test]
fn multi_guest_paillier_packed_tcp_psi_matches_pre_aligned() {
    assert_multi_parity(FedConfig::paillier_test(), 1024, 4, true);
}

/// Re-shuffle one party's local view: permute its feature rows and its
/// ID column with the *same* permutation (row identity is preserved;
/// only the local storage order changes). Seeded Fisher–Yates over an
/// LCG — the vendored proptest has no permutation strategy.
fn permuted(p: &MisalignedParty, seed: u64) -> MisalignedParty {
    let n = p.ids.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        perm.swap(i, (s >> 33) as usize % (i + 1));
    }
    MisalignedParty {
        data: p.data.select(&perm),
        ids: perm.iter().map(|&i| p.ids[i]).collect(),
    }
}

/// The aligned run every permuted case must reproduce exactly. Plain
/// backend, in-process, tiny data — each proptest case is a full
/// federated run.
fn permutation_canon() -> &'static (CellRun, Alignment, Alignment) {
    static CANON: OnceLock<(CellRun, Alignment, Alignment)> = OnceLock::new();
    CANON.get_or_init(|| {
        let ds = dataset_spec("a9a").scaled(1024, 1);
        let (train, test) = generate(&ds, DATA_SEED);
        let mis = vsplit_misaligned(&train, OVERLAP, DATA_SEED);
        let test_v = vsplit(&test);
        two_party_aligned(
            &FedConfig::plain(),
            false,
            &base_tc(4),
            mis.party_a.clone(),
            &mis.party_b,
            test_v.party_a.clone(),
            &test_v.party_b,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// Shuffling both parties' local rows changes nothing observable:
    /// losses, models, traffic totals (the digest sets are canonical
    /// ascending on the wire), intersection, and PSI byte costs all
    /// match the unpermuted run bit-for-bit. Only the private local
    /// row indices differ.
    #[test]
    fn aligned_runs_are_invariant_to_local_row_permutations(seed in any::<u64>()) {
        let (canon, canon_a, canon_b) = permutation_canon();
        let ds = dataset_spec("a9a").scaled(1024, 1);
        let (train, test) = generate(&ds, DATA_SEED);
        let mis = vsplit_misaligned(&train, OVERLAP, DATA_SEED);
        let test_v = vsplit(&test);
        let (run, align_a, align_b) = two_party_aligned(
            &FedConfig::plain(),
            false,
            &base_tc(4),
            permuted(&mis.party_a, seed ^ 0xA),
            &permuted(&mis.party_b, seed ^ 0xB),
            test_v.party_a.clone(),
            &test_v.party_b,
        );
        prop_assert_eq!(&run, canon);
        prop_assert_eq!(&align_a.ids, &canon_a.ids);
        prop_assert_eq!(&align_b.ids, &canon_b.ids);
        prop_assert_eq!(align_a.psi_bytes_sent, canon_a.psi_bytes_sent);
        prop_assert_eq!(align_b.psi_bytes_sent, canon_b.psi_bytes_sent);
    }
}

/// A reconnect-enabled TCP pair (the transport suite's idiom): the
/// accept side keeps its listener for re-accepts, the connect side
/// redials the address.
fn reconnecting_tcp_pair(window: usize, policy: RetryPolicy) -> (Endpoint, Endpoint) {
    let listener = Arc::new(TcpListener::bind("127.0.0.1:0").unwrap());
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || {
        Endpoint::tcp_connect(addr)
            .unwrap()
            .with_reconnect(Redial::Connect(addr), policy, window)
    });
    let host = Endpoint::tcp_accept(&listener).unwrap().with_reconnect(
        Redial::Accept(listener),
        policy,
        window,
    );
    (t.join().unwrap(), host)
}

/// PSI bytes land in [`bf_mpc::TrafficStats`] exactly once, even when
/// the link dies mid-phase and the transport replays frames across the
/// reconnect: a run severed right after the PSI offer reports the same
/// byte totals (and the same intersection) as an unsevered run,
/// because replayed frames bypass the stats counters by design.
#[test]
fn reconnect_replay_counts_psi_bytes_exactly_once() {
    let ids_host: Vec<u64> = (0..32).map(|i| 1_000 + 7 * i).collect();
    let ids_guest: Vec<u64> = (0..32).map(|i| 1_000 + 14 * i).collect();
    let salt = psi_salt(SEED);

    // The host side is driven frame-by-frame (the `psi_host` protocol,
    // unrolled) so the sever can land between the offer and the rest
    // of the phase; the guest side runs the real `psi_guest`.
    let run = |sever: bool| -> (Vec<u64>, u64, u64) {
        let (host, guest) = reconnecting_tcp_pair(8, RetryPolicy::default());
        let (tx, rx) = mpsc::channel::<()>();
        let ids_g = ids_guest.clone();
        let t = std::thread::spawn(move || {
            rx.recv().unwrap(); // hold until the sever (if any) happened
            let (got_salt, sel) = psi_guest(&guest, &ids_g).expect("guest PSI");
            (got_salt, sel, guest.stats().bytes())
        });
        host.send(Msg::PsiOffer {
            salt,
            count: ids_host.len() as u64,
        })
        .expect("offer");
        if sever {
            host.sever();
        }
        tx.send(()).unwrap();
        let theirs = host.recv_psi_digests().expect("guest digests");
        let mine = salted_digests(salt, &ids_host).expect("host digests");
        let common: Vec<u64> = mine
            .into_iter()
            .filter(|d| theirs.binary_search(d).is_ok())
            .collect();
        host.send(Msg::PsiDigests {
            digests: common.clone(),
        })
        .expect("echo common");
        let sel = select_common(salt, &ids_host, &common).expect("host selection");
        let (got_salt, guest_sel, guest_bytes) = t.join().expect("guest panicked");
        assert_eq!(got_salt, salt);
        assert_eq!(guest_sel.ids, sel.ids, "parties disagree on the set");
        (sel.ids, host.stats().bytes(), guest_bytes)
    };

    let (ids_clean, host_clean, guest_clean) = run(false);
    let (ids_severed, host_severed, guest_severed) = run(true);
    // Both parties really intersected something.
    assert_eq!(ids_clean.len(), 16);
    assert_eq!(ids_clean, ids_severed);
    // The severed run's reconnect + replay added zero counted bytes.
    assert_eq!(host_severed, host_clean, "host PSI bytes double-counted");
    assert_eq!(guest_severed, guest_clean, "guest PSI bytes double-counted");
}
