//! The chaos-parity suite: fault-tolerant training must be **exactly**
//! fault-free training.
//!
//! Each cell of the matrix
//! `{two-party, M = 2 multi-guest} × {Plain, Paillier/Packed} ×
//! {in-process, TCP}` does the same experiment:
//!
//! 1. run the uninterrupted baseline (no checkpoints, no faults);
//! 2. rerun with mid-epoch checkpointing on and a scripted
//!    [`FaultAction::Kill`] at a (seed-derived) random batch — the
//!    killed party dies with a typed error carrying
//!    [`FAULT_KILL_MARKER`], and its peers die with link errors;
//! 3. restart every party from its latest checkpoint file (fresh
//!    endpoints, fresh handshakes from the *same* `(cfg, role, seed)`)
//!    and run to completion;
//! 4. assert the recovered run is **bit-identical** to the baseline:
//!    the full per-batch loss curve, the test metric, the per-link
//!    traffic totals, and the exported model bytes of every party.
//!
//! A separate test asserts the checkpoint mechanism itself is
//! wire-silent: an uninterrupted run with checkpointing enabled sends
//! exactly the same bytes as one without (capture is local-only).
//!
//! The checkpoint blobs' byte-exact round-trip and corruption
//! rejection are property-tested in `crates/core/tests/persist_prop.rs`;
//! the transport replay-cursor arithmetic is property-tested inside
//! `bf-mpc`.

use std::net::TcpListener;
use std::path::{Path, PathBuf};

use bf_datagen::{generate, spec as dataset_spec, vsplit, vsplit_misaligned, vsplit_multi};
use bf_mpc::Endpoint;
use rand::{RngCore, SeedableRng};

use bf_mpc::fault::{FaultAction, FaultPlan};
use bf_mpc::transport::TransportResult;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::multiparty::{collect_guests, send_hello};
use blindfl::persist::{
    export_multi_party_b, export_party_a, export_party_b, import_checkpoint_a, import_checkpoint_b,
    import_checkpoint_multi_b, CheckpointA, CheckpointB, MultiCheckpointB,
};
use blindfl::session::{multi_party_seed, party_seed, Role, Session};
use blindfl::train::{
    run_party_a, run_party_a_aligned, run_party_a_aligned_resume, run_party_a_resume, run_party_b,
    run_party_b_aligned, run_party_b_aligned_resume, run_party_b_multi, run_party_b_multi_resume,
    run_party_b_resume, CheckpointCadence, FedTrainConfig, MultiPartyBRun, PartyARun, PartyBRun,
    FAULT_KILL_MARKER,
};
use blindfl::{psi_salt, Alignment};

const SEED: u64 = 29;
const DATA_SEED: u64 = 17;
const EPOCHS: usize = 2;
/// Checkpoint cadence used by every chaos cell.
const EVERY: u64 = 2;

fn base_tc(bs: usize) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: EPOCHS,
            batch_size: bs,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

fn with_ckpt(mut tc: FedTrainConfig, path: &Path) -> FedTrainConfig {
    tc.checkpoint = Some(CheckpointCadence {
        every_batches: EVERY,
        path: path.to_path_buf(),
    });
    tc
}

fn with_kill(mut tc: FedTrainConfig, at_batch: u64) -> FedTrainConfig {
    tc.fault = Some(FaultPlan {
        at_batch,
        action: FaultAction::Kill,
    });
    tc
}

/// A per-cell unique checkpoint path. `BF_CHAOS_DIR` redirects the
/// files into a named directory and disables end-of-test cleanup so
/// CI can upload them as a post-mortem artifact.
fn tmp(name: &str) -> PathBuf {
    match std::env::var("BF_CHAOS_DIR") {
        Ok(dir) => {
            let _ = std::fs::create_dir_all(&dir);
            PathBuf::from(dir).join(format!("{name}.ckpt"))
        }
        Err(_) => std::env::temp_dir().join(format!("bf_chaos_{}_{name}.ckpt", std::process::id())),
    }
}

/// Delete a checkpoint file unless `BF_CHAOS_DIR` asked to keep them.
fn cleanup(path: &Path) {
    if std::env::var("BF_CHAOS_DIR").is_err() {
        let _ = std::fs::remove_file(path);
    }
}

/// Actual training rows after `DatasetSpec::scaled(row_div, 1)` —
/// `scaled` divides the catalog row count, it does not set it.
fn train_rows(row_div: usize) -> usize {
    dataset_spec("a9a").scaled(row_div, 1).train_rows
}

/// The batch the fault kills at: "random", but derived from the cell
/// name so every run of the suite reproduces. Constrained to
/// `[EVERY − 1, total − 2]` — late enough that at least one checkpoint
/// exists, early enough that recovery has work left to do.
fn kill_batch(cell: &str, total_batches: u64) -> u64 {
    let cell_seed = cell.bytes().fold(0xC4A05u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001B3)
    });
    let span = total_batches - EVERY;
    EVERY - 1 + rand::rngs::StdRng::seed_from_u64(cell_seed).next_u64() % span
}

/// Everything a completed cell run produces, reduced to the
/// bit-comparable facts.
#[derive(PartialEq, Debug)]
struct CellRun {
    losses: Vec<f64>,
    metric: f64,
    /// A→B bytes per link (one entry in the two-party cells).
    bytes_a: Vec<u64>,
    /// B→A bytes per link.
    bytes_b: Vec<u64>,
    /// Exported model bytes per guest, in link order.
    models_a: Vec<Vec<u8>>,
    /// Exported Party B model bytes.
    model_b: Vec<u8>,
}

/// Duplex endpoints for one link over the chosen transport.
fn endpoints(tcp: bool) -> (Endpoint, Endpoint) {
    if !tcp {
        return bf_mpc::channel_pair();
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let t = std::thread::spawn(move || Endpoint::tcp_connect(addr).expect("connect"));
    let b = Endpoint::tcp_accept(&listener).expect("accept");
    (t.join().expect("connect thread"), b)
}

/// One two-party run (fresh or resumed): Party A on a thread, Party B
/// on the caller's thread. Errors are returned, not panicked — the
/// chaos phase expects both parties to fail.
#[allow(clippy::type_complexity)]
fn run_two_party(
    cfg: &FedConfig,
    row_div: usize,
    tcp: bool,
    tc_a: FedTrainConfig,
    tc_b: FedTrainConfig,
    resume: Option<(CheckpointA, CheckpointB)>,
) -> (TransportResult<PartyARun>, TransportResult<PartyBRun>) {
    let ds = dataset_spec("a9a").scaled(row_div, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let fed = FedSpec::Glm { out: 1 };

    let (ep_a, ep_b) = endpoints(tcp);
    let (cp_a, cp_b) = match resume {
        Some((a, b)) => (Some(a), Some(b)),
        None => (None, None),
    };
    let cfg_a = cfg.clone();
    let fed_a = fed.clone();
    let (train_a, test_a) = (train_v.party_a.clone(), test_v.party_a.clone());
    let guest = std::thread::Builder::new()
        .name("chaos-party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SEED))?;
            match cp_a {
                None => run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a),
                Some(cp) => run_party_a_resume(&mut sess, &tc_a, &train_a, &test_a, cp),
            }
        })
        .expect("spawn party A");
    let res_b = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SEED)).and_then(
        |mut sess| match cp_b {
            None => run_party_b(&mut sess, &fed, &tc_b, &train_v.party_b, &test_v.party_b),
            Some(cp) => run_party_b_resume(&mut sess, &tc_b, &train_v.party_b, &test_v.party_b, cp),
        },
    );
    let res_a = guest.join().expect("party A panicked");
    (res_a, res_b)
}

fn collect_two_party(a: PartyARun, b: PartyBRun) -> CellRun {
    CellRun {
        losses: b.losses,
        metric: b.test_metric,
        bytes_a: vec![a.bytes_sent],
        bytes_b: vec![b.bytes_sent],
        models_a: vec![export_party_a(&a.model)],
        model_b: export_party_b(&b.model),
    }
}

/// The full chaos experiment for one two-party cell.
fn assert_two_party_recovery(cell: &str, cfg: FedConfig, row_div: usize, bs: usize, tcp: bool) {
    let total = (train_rows(row_div) / bs * EPOCHS) as u64;
    let kill_at = kill_batch(cell, total);
    let tc = base_tc(bs);

    // 1. Uninterrupted baseline.
    let (ra, rb) = run_two_party(&cfg, row_div, tcp, tc.clone(), tc.clone(), None);
    let baseline = collect_two_party(ra.expect("baseline A"), rb.expect("baseline B"));
    assert_eq!(baseline.losses.len() as u64, total);

    // 2. Chaos run: checkpoints on, Party A killed after `kill_at`.
    let (path_a, path_b) = (tmp(&format!("{cell}_a")), tmp(&format!("{cell}_b")));
    let (ra, rb) = run_two_party(
        &cfg,
        row_div,
        tcp,
        with_kill(with_ckpt(tc.clone(), &path_a), kill_at),
        with_ckpt(tc.clone(), &path_b),
        None,
    );
    let err_a = ra.err().expect("A must die from the injected kill");
    assert!(
        err_a.to_string().contains(FAULT_KILL_MARKER),
        "unexpected A error: {err_a}"
    );
    let err_b = rb.err().expect("B must observe the dead peer");
    assert!(
        !err_b.to_string().contains(FAULT_KILL_MARKER),
        "B died from its own fault plan, not the peer: {err_b}"
    );

    // 3. Restart both parties from their latest checkpoints.
    let cp_a = import_checkpoint_a(&std::fs::read(&path_a).expect("A checkpoint file"))
        .expect("A checkpoint decodes");
    let cp_b = import_checkpoint_b(&std::fs::read(&path_b).expect("B checkpoint file"))
        .expect("B checkpoint decodes");
    assert_eq!(
        (cp_a.epoch, cp_a.batch),
        (cp_b.epoch, cp_b.batch),
        "the parties' latest checkpoints must sit at the same batch"
    );
    let (ra, rb) = run_two_party(
        &cfg,
        row_div,
        tcp,
        with_ckpt(tc.clone(), &path_a),
        with_ckpt(tc, &path_b),
        Some((cp_a, cp_b)),
    );
    let recovered = collect_two_party(ra.expect("resumed A"), rb.expect("resumed B"));

    // 4. Bit-identical to the baseline: curve, metric, traffic, models.
    assert_eq!(baseline, recovered, "recovery diverged from the baseline");
    cleanup(&path_a);
    cleanup(&path_b);
}

#[test]
fn two_party_plain_in_process_recovers_bit_identically() {
    assert_two_party_recovery("2p_plain_chan", FedConfig::plain(), 256, 16, false);
}

#[test]
fn two_party_plain_tcp_recovers_bit_identically() {
    assert_two_party_recovery("2p_plain_tcp", FedConfig::plain(), 256, 16, true);
}

#[test]
fn two_party_paillier_packed_in_process_recovers_bit_identically() {
    assert_two_party_recovery("2p_pail_chan", FedConfig::paillier_test(), 1024, 8, false);
}

#[test]
fn two_party_paillier_packed_tcp_recovers_bit_identically() {
    assert_two_party_recovery("2p_pail_tcp", FedConfig::paillier_test(), 1024, 8, true);
}

/// One M-guest run (fresh or resumed). Guests on threads, Party B on
/// the caller's thread; per-guest train configs let the chaos phase
/// kill exactly one guest.
#[allow(clippy::type_complexity)]
fn run_multi(
    cfg: &FedConfig,
    m: usize,
    row_div: usize,
    tcp: bool,
    tcs_a: Vec<FedTrainConfig>,
    tc_b: FedTrainConfig,
    resume: Option<(Vec<CheckpointA>, MultiCheckpointB)>,
) -> (
    Vec<TransportResult<PartyARun>>,
    TransportResult<MultiPartyBRun>,
) {
    let ds = dataset_spec("a9a").scaled(row_div, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let train_v = vsplit_multi(&train, m);
    let test_v = vsplit_multi(&test, m);
    let fed = FedSpec::Glm { out: 1 };

    let (cps_a, cp_b) = match resume {
        Some((a, b)) => (a.into_iter().map(Some).collect::<Vec<_>>(), Some(b)),
        None => ((0..m).map(|_| None).collect(), None),
    };

    let listener = tcp.then(|| TcpListener::bind("127.0.0.1:0").expect("bind localhost"));
    let addr = listener.as_ref().map(|l| l.local_addr().unwrap());
    let mut host_eps = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for ((i, ((train_a, test_a), tc_a)), cp) in (train_v.guests.into_iter())
        .zip(test_v.guests)
        .zip(tcs_a)
        .enumerate()
        .zip(cps_a)
    {
        let ep_a = match addr {
            Some(addr) => Endpoint::tcp_connect(addr).expect("guest connect"),
            None => {
                let (ea, eb) = bf_mpc::channel_pair();
                host_eps.push(eb);
                ea
            }
        };
        let cfg_a = cfg.clone();
        let fed_a = fed.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("chaos-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, m)?;
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, SEED),
                    )?;
                    match cp {
                        None => run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a),
                        Some(cp) => run_party_a_resume(&mut sess, &tc_a, &train_a, &test_a, cp),
                    }
                })
                .expect("spawn guest"),
        );
    }
    if let Some(listener) = &listener {
        host_eps = (0..m)
            .map(|_| Endpoint::tcp_accept(listener).expect("accept"))
            .collect();
    }
    let res_b = collect_guests(host_eps, m).and_then(|ordered| {
        let mut sessions = ordered
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, SEED))
            })
            .collect::<TransportResult<Vec<Session>>>()?;
        let res = match cp_b {
            None => run_party_b_multi(
                &mut sessions,
                &fed,
                &tc_b,
                &train_v.party_b,
                &test_v.party_b,
            ),
            Some(cp) => run_party_b_multi_resume(
                &mut sessions,
                &tc_b,
                &train_v.party_b,
                &test_v.party_b,
                cp,
            ),
        };
        drop(sessions); // release the links so blocked guests fail fast
        res
    });
    let res_a: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("guest panicked"))
        .collect();
    (res_a, res_b)
}

fn collect_multi(guests: Vec<PartyARun>, b: MultiPartyBRun) -> CellRun {
    CellRun {
        losses: b.losses,
        metric: b.test_metric,
        bytes_a: guests.iter().map(|g| g.bytes_sent).collect(),
        bytes_b: b.bytes_sent_per_link.clone(),
        models_a: guests.iter().map(|g| export_party_a(&g.model)).collect(),
        model_b: export_multi_party_b(&b.model),
    }
}

/// The full chaos experiment for one M = 2 multi-guest cell: guest 0
/// is killed; B and guest 1 die with link errors; all three restart
/// from their checkpoints.
fn assert_multi_recovery(cell: &str, cfg: FedConfig, row_div: usize, bs: usize, tcp: bool) {
    const M: usize = 2;
    let total = (train_rows(row_div) / bs * EPOCHS) as u64;
    let kill_at = kill_batch(cell, total);
    let tc = base_tc(bs);

    // 1. Uninterrupted baseline.
    let (ras, rb) = run_multi(&cfg, M, row_div, tcp, vec![tc.clone(); M], tc.clone(), None);
    let guests: Vec<PartyARun> = ras
        .into_iter()
        .map(|r| r.expect("baseline guest"))
        .collect();
    let baseline = collect_multi(guests, rb.expect("baseline B"));
    assert_eq!(baseline.losses.len() as u64, total);

    // 2. Chaos run: guest 0 killed after `kill_at`.
    let paths: Vec<PathBuf> = (0..M).map(|i| tmp(&format!("{cell}_g{i}"))).collect();
    let path_b = tmp(&format!("{cell}_b"));
    let tcs_a: Vec<FedTrainConfig> = (0..M)
        .map(|i| {
            let t = with_ckpt(tc.clone(), &paths[i]);
            if i == 0 {
                with_kill(t, kill_at)
            } else {
                t
            }
        })
        .collect();
    let (ras, rb) = run_multi(
        &cfg,
        M,
        row_div,
        tcp,
        tcs_a,
        with_ckpt(tc.clone(), &path_b),
        None,
    );
    let err0 = ras[0].as_ref().err().expect("guest 0 must die");
    assert!(
        err0.to_string().contains(FAULT_KILL_MARKER),
        "unexpected guest-0 error: {err0}"
    );
    assert!(ras[1].is_err(), "guest 1 must observe the collapsed run");
    assert!(rb.is_err(), "B must observe the dead guest");

    // 3. Restart all three parties from their latest checkpoints.
    let cps_a: Vec<CheckpointA> = paths
        .iter()
        .map(|p| {
            import_checkpoint_a(&std::fs::read(p).expect("guest checkpoint file"))
                .expect("guest checkpoint decodes")
        })
        .collect();
    let cp_b = import_checkpoint_multi_b(&std::fs::read(&path_b).expect("B checkpoint file"))
        .expect("B checkpoint decodes");
    for cp in &cps_a {
        assert_eq!(
            (cp.epoch, cp.batch),
            (cp_b.epoch, cp_b.batch),
            "every party's latest checkpoint must sit at the same batch"
        );
    }
    let tcs_a: Vec<FedTrainConfig> = (0..M).map(|i| with_ckpt(tc.clone(), &paths[i])).collect();
    let (ras, rb) = run_multi(
        &cfg,
        M,
        row_div,
        tcp,
        tcs_a,
        with_ckpt(tc, &path_b),
        Some((cps_a, cp_b)),
    );
    let guests: Vec<PartyARun> = ras.into_iter().map(|r| r.expect("resumed guest")).collect();
    let recovered = collect_multi(guests, rb.expect("resumed B"));

    // 4. Bit-identical to the baseline.
    assert_eq!(baseline, recovered, "recovery diverged from the baseline");
    for p in paths.iter().chain([&path_b]) {
        cleanup(p);
    }
}

#[test]
fn multi_guest_plain_in_process_recovers_bit_identically() {
    assert_multi_recovery("m2_plain_chan", FedConfig::plain(), 256, 16, false);
}

#[test]
fn multi_guest_plain_tcp_recovers_bit_identically() {
    assert_multi_recovery("m2_plain_tcp", FedConfig::plain(), 256, 16, true);
}

#[test]
fn multi_guest_paillier_packed_in_process_recovers_bit_identically() {
    assert_multi_recovery("m2_pail_chan", FedConfig::paillier_test(), 1024, 8, false);
}

#[test]
fn multi_guest_paillier_packed_tcp_recovers_bit_identically() {
    assert_multi_recovery("m2_pail_tcp", FedConfig::paillier_test(), 1024, 8, true);
}

/// Checkpoint capture is wire-silent: an uninterrupted run with
/// checkpointing enabled is bit-identical — losses, metric, traffic
/// totals, trained models — to one without, and the checkpoint files
/// it leaves behind decode to the configured cadence position.
fn assert_checkpointing_is_wire_silent(cell: &str, cfg: FedConfig, row_div: usize, bs: usize) {
    let tc = base_tc(bs);
    let (ra, rb) = run_two_party(&cfg, row_div, false, tc.clone(), tc.clone(), None);
    let plainest = collect_two_party(ra.expect("A"), rb.expect("B"));

    let (path_a, path_b) = (tmp(&format!("{cell}_a")), tmp(&format!("{cell}_b")));
    let (ra, rb) = run_two_party(
        &cfg,
        row_div,
        false,
        with_ckpt(tc.clone(), &path_a),
        with_ckpt(tc, &path_b),
        None,
    );
    let checkpointed = collect_two_party(ra.expect("A"), rb.expect("B"));
    assert_eq!(
        plainest, checkpointed,
        "enabling checkpoints changed the run (traffic or math)"
    );

    // The files exist, decode, and sit at the last cadence boundary.
    let total = (train_rows(row_div) / bs * EPOCHS) as u64;
    let last = total - total % EVERY;
    let bpe = (train_rows(row_div) / bs) as u64;
    let cp_a = import_checkpoint_a(&std::fs::read(&path_a).unwrap()).unwrap();
    let cp_b = import_checkpoint_b(&std::fs::read(&path_b).unwrap()).unwrap();
    for (epoch, batch) in [(cp_a.epoch, cp_a.batch), (cp_b.epoch, cp_b.batch)] {
        assert_eq!(epoch * bpe + batch, last, "checkpoint not at the cadence");
    }
    assert_eq!(cp_b.losses.len() as u64, last);
    cleanup(&path_a);
    cleanup(&path_b);
}

#[test]
fn plain_checkpoint_capture_adds_no_wire_traffic() {
    assert_checkpointing_is_wire_silent("silent_plain", FedConfig::plain(), 256, 16);
}

#[test]
fn paillier_checkpoint_capture_adds_no_wire_traffic() {
    assert_checkpointing_is_wire_silent("silent_pail", FedConfig::paillier_test(), 1024, 8);
}

/// Overlap fraction of the PSI chaos cells: the aligned run trains on
/// half the generated rows.
const OVERLAP: f64 = 0.5;

/// One PSI-aligned two-party run (fresh or resumed) over a misaligned
/// split: shuffled supersets plus ID columns in, alignment + run out.
#[allow(clippy::type_complexity)]
fn run_two_party_aligned(
    cfg: &FedConfig,
    row_div: usize,
    tcp: bool,
    tc_a: FedTrainConfig,
    tc_b: FedTrainConfig,
    resume: Option<(CheckpointA, CheckpointB)>,
) -> (
    TransportResult<(Alignment, PartyARun)>,
    TransportResult<(Alignment, PartyBRun)>,
) {
    let ds = dataset_spec("a9a").scaled(row_div, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let mis = vsplit_misaligned(&train, OVERLAP, DATA_SEED);
    let test_v = vsplit(&test);
    let salt = psi_salt(SEED);
    let fed = FedSpec::Glm { out: 1 };

    let (ep_a, ep_b) = endpoints(tcp);
    let (cp_a, cp_b) = match resume {
        Some((a, b)) => (Some(a), Some(b)),
        None => (None, None),
    };
    let cfg_a = cfg.clone();
    let fed_a = fed.clone();
    let (train_a, ids_a) = (mis.party_a.data.clone(), mis.party_a.ids.clone());
    let test_a = test_v.party_a.clone();
    let guest = std::thread::Builder::new()
        .name("chaos-aligned-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SEED))?;
            match cp_a {
                None => run_party_a_aligned(&mut sess, &fed_a, &tc_a, &train_a, &test_a, &ids_a),
                Some(cp) => {
                    run_party_a_aligned_resume(&mut sess, &tc_a, &train_a, &test_a, &ids_a, cp)
                }
            }
        })
        .expect("spawn party A");
    let res_b = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SEED)).and_then(
        |mut sess| match cp_b {
            None => run_party_b_aligned(
                &mut sess,
                &fed,
                &tc_b,
                &mis.party_b.data,
                &test_v.party_b,
                salt,
                &mis.party_b.ids,
            ),
            Some(cp) => run_party_b_aligned_resume(
                &mut sess,
                &tc_b,
                &mis.party_b.data,
                &test_v.party_b,
                &mis.party_b.ids,
                cp,
            ),
        },
    );
    let res_a = guest.join().expect("party A panicked");
    (res_a, res_b)
}

/// The chaos experiment through the PSI phase: kill Party A mid-run of
/// a PSI-aligned training, restart from the aligned checkpoints, and
/// demand bit-identity with the uninterrupted aligned baseline —
/// traffic totals included, which is the no-double-count contract:
/// the resumed run rebuilds its selection from the checkpointed
/// cursor with **zero** wire traffic, while `restore_cursor` preloads
/// totals that already contain the original PSI bytes exactly once.
fn assert_aligned_recovery(cell: &str, cfg: FedConfig, row_div: usize, bs: usize, tcp: bool) {
    let aligned_rows = (OVERLAP * train_rows(row_div) as f64).round() as usize;
    let total = (aligned_rows / bs * EPOCHS) as u64;
    let kill_at = kill_batch(cell, total);
    let tc = base_tc(bs);

    // 1. Uninterrupted aligned baseline (totals include the PSI phase).
    let (ra, rb) = run_two_party_aligned(&cfg, row_div, tcp, tc.clone(), tc.clone(), None);
    let (al_a, a) = ra.expect("baseline A");
    let (al_b, b) = rb.expect("baseline B");
    assert!(al_a.psi_bytes_sent > 0 && al_b.psi_bytes_sent > 0);
    let baseline = collect_two_party(a, b);
    assert_eq!(baseline.losses.len() as u64, total);

    // 2. Chaos run: checkpoints on, Party A killed after `kill_at`.
    let (path_a, path_b) = (tmp(&format!("{cell}_a")), tmp(&format!("{cell}_b")));
    let (ra, rb) = run_two_party_aligned(
        &cfg,
        row_div,
        tcp,
        with_kill(with_ckpt(tc.clone(), &path_a), kill_at),
        with_ckpt(tc.clone(), &path_b),
        None,
    );
    let err_a = ra.err().expect("A must die from the injected kill");
    assert!(
        err_a.to_string().contains(FAULT_KILL_MARKER),
        "unexpected A error: {err_a}"
    );
    assert!(rb.is_err(), "B must observe the dead peer");

    // 3. The checkpoints embed the alignment cursor (persist kinds
    //    9–10), pointing at exactly the intersection the run selected.
    let cp_a = import_checkpoint_a(&std::fs::read(&path_a).expect("A checkpoint file"))
        .expect("A checkpoint decodes");
    let cp_b = import_checkpoint_b(&std::fs::read(&path_b).expect("B checkpoint file"))
        .expect("B checkpoint decodes");
    for cur in [
        cp_a.aligned
            .as_ref()
            .expect("A checkpoint carries no cursor"),
        cp_b.aligned
            .as_ref()
            .expect("B checkpoint carries no cursor"),
    ] {
        assert_eq!(cur.salt, psi_salt(SEED));
        assert_eq!(cur.ids, al_a.ids);
    }
    assert_eq!(
        (cp_a.epoch, cp_a.batch),
        (cp_b.epoch, cp_b.batch),
        "the parties' latest checkpoints must sit at the same batch"
    );

    // 4. Restart both parties; the realignment must be wire-free.
    let (ra, rb) = run_two_party_aligned(
        &cfg,
        row_div,
        tcp,
        with_ckpt(tc.clone(), &path_a),
        with_ckpt(tc, &path_b),
        Some((cp_a, cp_b)),
    );
    let (ral_a, a) = ra.expect("resumed A");
    let (ral_b, b) = rb.expect("resumed B");
    assert_eq!(ral_a.ids, al_a.ids, "resumed A re-selected a different set");
    assert_eq!(ral_b.ids, al_b.ids, "resumed B re-selected a different set");
    assert_eq!(
        (ral_a.psi_bytes_sent, ral_b.psi_bytes_sent),
        (0, 0),
        "cursor-based realignment must cost zero wire bytes"
    );
    let recovered = collect_two_party(a, b);

    // 5. Bit-identical to the aligned baseline — the equal traffic
    //    totals prove the PSI bytes were counted exactly once.
    assert_eq!(baseline, recovered, "recovery diverged from the baseline");
    cleanup(&path_a);
    cleanup(&path_b);
}

#[test]
fn psi_aligned_plain_in_process_recovers_bit_identically() {
    assert_aligned_recovery("2p_ali_plain_chan", FedConfig::plain(), 256, 16, false);
}

#[test]
fn psi_aligned_paillier_packed_tcp_recovers_bit_identically() {
    assert_aligned_recovery("2p_ali_pail_tcp", FedConfig::paillier_test(), 1024, 8, true);
}
