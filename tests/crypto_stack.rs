//! Cross-crate property tests of the cryptographic stack: Paillier over
//! the from-scratch bignum, HE↔SS conversions, and the CryptoTensor
//! kernels — the full pipeline the source layers stand on.

use bf_mpc::shares::share_dense;
use bf_paillier::{keygen, ObfMode, Obfuscator, PaillierMode, PublicKey, SecretKey};
use bf_tensor::{Csr, Dense, Features};
use proptest::prelude::*;
use rand::SeedableRng;

fn keys() -> (PublicKey, SecretKey, Obfuscator) {
    // One fixed key pair for the whole property suite (keygen is the
    // expensive part; ciphertext behaviour is what's under test).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let (pk, sk) = keygen(256, 20, &mut rng);
    let obf = Obfuscator::new(&pk, ObfMode::Pool(8), 7);
    (pk, sk, obf)
}

fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    prop::collection::vec(-50.0f64..50.0, rows * cols)
        .prop_map(move |v| Dense::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn enc_dec_roundtrip(m in small_mat(3, 3)) {
        let (pk, sk, obf) = keys();
        let ct = pk.encrypt(&m, &obf);
        prop_assert!(sk.decrypt(&ct).approx_eq(&m, 1e-4));
    }

    #[test]
    fn homomorphic_addition(a in small_mat(2, 3), b in small_mat(2, 3)) {
        let (pk, sk, obf) = keys();
        let ca = pk.encrypt(&a, &obf);
        let cb = pk.encrypt(&b, &obf);
        prop_assert!(sk.decrypt(&pk.add(&ca, &cb)).approx_eq(&a.add(&b), 1e-4));
    }

    #[test]
    fn matmul_over_ciphertexts(x in small_mat(3, 4), w in small_mat(4, 2)) {
        let (pk, sk, obf) = keys();
        let cw = pk.encrypt(&w.scale(0.01), &obf);
        let cz = pk.matmul(&Features::Dense(x.clone()), &cw);
        prop_assert!(sk.decrypt(&cz).approx_eq(&x.matmul(&w.scale(0.01)), 1e-3));
    }

    #[test]
    fn sparse_matmul_equals_dense(x in small_mat(4, 5), w in small_mat(5, 2)) {
        let (pk, sk, obf) = keys();
        // Zero half the entries to exercise the sparse path.
        let mut xz = x.clone();
        for (i, v) in xz.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 { *v = 0.0; }
        }
        let cw = pk.encrypt(&w.scale(0.01), &obf);
        let dense_out = sk.decrypt(&pk.matmul(&Features::Dense(xz.clone()), &cw));
        let sparse_out =
            sk.decrypt(&pk.matmul(&Features::Sparse(Csr::from_dense(&xz)), &cw));
        prop_assert!(dense_out.approx_eq(&sparse_out, 1e-6));
    }

    #[test]
    fn he2ss_pieces_reconstruct(v in small_mat(2, 2)) {
        let (pk, sk, obf) = keys();
        let ct = pk.encrypt(&v, &obf);
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let phi = bf_mpc::he2ss_holder(&ep_a, &pk, &ct, 100.0, &mut rng).unwrap();
        let piece = bf_mpc::he2ss_peer(&ep_b, &sk).unwrap();
        prop_assert!(phi.add(&piece).approx_eq(&v, 1e-4));
    }

    #[test]
    fn secret_shares_reconstruct_and_hide(v in small_mat(3, 3)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (s1, s2) = share_dense(&mut rng, &v, 1000.0);
        prop_assert!(s1.add(&s2).approx_eq(&v, 1e-9));
        // The kept piece is mask-dominated.
        prop_assert!(s1.max_abs() <= 1000.0);
    }

    #[test]
    fn transpose_commutes_with_decrypt(m in small_mat(3, 4)) {
        let (pk, sk, obf) = keys();
        let ct = pk.encrypt(&m, &obf);
        prop_assert!(sk.decrypt(&ct.transpose()).approx_eq(&m.transpose(), 1e-4));
    }

    #[test]
    fn packed_encrypt_decrypt_bit_identical(m in small_mat(3, 4)) {
        // 256-bit/frac-20: 80-bit slots, 3 per ciphertext. The packed
        // decode must equal the scalar decode exactly, not within eps.
        let (pk, sk, obf) = keys();
        let cs = pk.encrypt(&m, &obf);
        let cp = pk.encrypt_mode(&m, PaillierMode::Packed, &obf);
        prop_assert!(cp.is_packed());
        let (dp, ds) = (sk.decrypt(&cp), sk.decrypt(&cs));
        prop_assert_eq!(dp.data(), ds.data());
    }

    #[test]
    fn packed_matmul_bit_identical(x in small_mat(3, 4), w in small_mat(4, 3)) {
        let (pk, sk, obf) = keys();
        let w = w.scale(0.01);
        let cs = pk.matmul(&Features::Dense(x.clone()), &pk.encrypt(&w, &obf));
        let cp = pk.matmul(
            &Features::Dense(x),
            &pk.encrypt_mode(&w, PaillierMode::Packed, &obf),
        );
        let (dp, ds) = (sk.decrypt(&cp), sk.decrypt(&cs));
        prop_assert_eq!(dp.data(), ds.data());
    }

    #[test]
    fn packed_add_bit_identical(a in small_mat(2, 4), b in small_mat(2, 4)) {
        let (pk, sk, obf) = keys();
        let sum_s = pk.add(&pk.encrypt(&a, &obf), &pk.encrypt(&b, &obf));
        let sum_p = pk.add(
            &pk.encrypt_mode(&a, PaillierMode::Packed, &obf),
            &pk.encrypt_mode(&b, PaillierMode::Packed, &obf),
        );
        let (dp, ds) = (sk.decrypt(&sum_p), sk.decrypt(&sum_s));
        prop_assert_eq!(dp.data(), ds.data());
    }
}

#[test]
fn beaver_pipeline_end_to_end() {
    // dealer triplet → secret matmul → reconstruction, at several shapes.
    for (m, k, n) in [(2usize, 3usize, 2usize), (4, 8, 1), (1, 16, 4)] {
        let err = bf_baselines::secureml::secureml_forward_check(m, k, n);
        assert!(err < 1e-7, "({m},{k},{n}) err {err}");
    }
}
