//! End-to-end federated training across every model family of the
//! evaluation, over vertically split synthetic datasets, including a
//! full run with real Paillier ciphertexts.

use bf_datagen::{generate, spec, vsplit};
use bf_ml::TrainConfig;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedOutcome, FedTrainConfig};

fn run(
    dataset: &str,
    row_div: usize,
    feat_div: usize,
    fed_spec: FedSpec,
    cfg: &FedConfig,
    epochs: usize,
    seed: u64,
) -> (FedOutcome, f64) {
    let ds = spec(dataset).scaled(row_div, feat_div);
    let (train, test) = generate(&ds, seed);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &fed_spec,
        cfg,
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a,
        test_v.party_b,
        seed,
    );
    let metric = outcome.report.test_metric;
    (outcome, metric)
}

#[test]
fn fed_lr_end_to_end() {
    let (outcome, auc) = run(
        "a9a",
        50,
        1,
        FedSpec::Glm { out: 1 },
        &FedConfig::plain(),
        8,
        1,
    );
    assert!(auc > 0.8, "LR AUC {auc}");
    assert!(outcome.report.losses.last().unwrap() < &outcome.report.losses[0]);
}

#[test]
fn fed_mlr_end_to_end() {
    let (_, acc) = run(
        "connect-4",
        25,
        1,
        FedSpec::Glm { out: 3 },
        &FedConfig::plain(),
        8,
        2,
    );
    assert!(acc > 0.55, "MLR accuracy {acc}");
}

#[test]
fn fed_mlp_end_to_end() {
    let (_, acc) = run(
        "connect-4",
        25,
        1,
        FedSpec::Mlp {
            widths: vec![32, 16, 3],
        },
        &FedConfig::plain(),
        8,
        3,
    );
    assert!(acc > 0.55, "MLP accuracy {acc}");
}

#[test]
fn fed_wdl_end_to_end() {
    let (outcome, auc) = run(
        "a9a",
        50,
        1,
        FedSpec::Wdl {
            emb_dim: 8,
            deep_hidden: vec![16],
            out: 1,
        },
        &FedConfig::plain(),
        8,
        4,
    );
    assert!(auc > 0.72, "WDL AUC {auc}");
    assert!(outcome.party_a.embed().is_some());
    assert!(outcome.party_b.embed().is_some());
}

#[test]
fn fed_dlrm_end_to_end() {
    let (_, auc) = run(
        "a9a",
        50,
        1,
        FedSpec::Dlrm {
            emb_dim: 8,
            vec_dim: 8,
            top_hidden: vec![8],
        },
        &FedConfig::plain(),
        8,
        5,
    );
    assert!(auc > 0.62, "DLRM AUC {auc}");
}

#[test]
fn fed_lr_with_real_paillier() {
    // Small but fully encrypted run: real keygen, real ciphertexts,
    // every protocol message genuine.
    let (outcome, auc) = run(
        "a9a",
        50,
        2,
        FedSpec::Glm { out: 1 },
        &FedConfig::paillier_test(),
        4,
        6,
    );
    assert!(auc > 0.6, "Paillier LR AUC {auc}");
    assert!(outcome.report.bytes_b_to_a > outcome.report.losses.len() as u64 * 100);
}

#[test]
fn federated_beats_party_b_on_every_model() {
    // The Figure 12 ordering, spot-checked on two model families.
    for (fed_spec, seed) in [
        (FedSpec::Glm { out: 1 }, 7u64),
        (
            FedSpec::Wdl {
                emb_dim: 4,
                deep_hidden: vec![8],
                out: 1,
            },
            8,
        ),
    ] {
        let ds = spec("a9a").scaled(25, 1);
        let (train, test) = generate(&ds, seed);
        let train_v = vsplit(&train);
        let test_v = vsplit(&test);
        let tc = FedTrainConfig {
            base: TrainConfig {
                epochs: 8,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        let outcome = train_federated(
            &fed_spec,
            &FedConfig::plain(),
            &tc,
            train_v.party_a.clone(),
            train_v.party_b.clone(),
            test_v.party_a.clone(),
            test_v.party_b.clone(),
            seed,
        );
        // NonFed-Party B with the same architecture family.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let party_b_metric = match fed_spec {
            FedSpec::Glm { out } => {
                let mut m = bf_ml::GlmModel::new(&mut rng, train_v.party_b.num_dim(), out);
                bf_ml::train(
                    &mut m,
                    &train_v.party_b,
                    &test_v.party_b,
                    &TrainConfig {
                        epochs: 8,
                        ..Default::default()
                    },
                )
                .test_metric
            }
            _ => {
                let cat = train_v.party_b.cat.as_ref().unwrap();
                let mut m = bf_ml::models::WdlModel::new(
                    &mut rng,
                    train_v.party_b.num_dim(),
                    cat.vocab(),
                    cat.fields(),
                    4,
                    &[8],
                    1,
                );
                bf_ml::train(
                    &mut m,
                    &train_v.party_b,
                    &test_v.party_b,
                    &TrainConfig {
                        epochs: 8,
                        ..Default::default()
                    },
                )
                .test_metric
            }
        };
        assert!(
            outcome.report.test_metric > party_b_metric,
            "federated {} <= party-B {party_b_metric}",
            outcome.report.test_metric
        );
    }
}
