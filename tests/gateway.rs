//! Gateway contracts (`docs/SERVING.md` §gateway):
//!
//! 1. **Replayable bit-parity** — every prediction a gateway delivers
//!    is bit-identical to the direct `predict_batch` forward under the
//!    same replica seed and batch partition. Each replica records its
//!    exact partitions (`ServeReport::batch_rows`); the tests replay
//!    them on fresh, identically-seeded sessions and compare bits.
//!    Cells: 2-party and `M = 2` multi-guest × Plain and
//!    Paillier/Packed.
//! 2. **Churn safety** — clients that connect, submit, and vanish
//!    (including mid-batch) never stall the gateway or corrupt another
//!    rider's reply; every admitted request is answered, rejected, or
//!    orphaned — none vanish.
//! 3. **Admission control** — with `shed_load` and a saturated pool
//!    the gateway answers `GW_OVERLOADED` instead of queueing without
//!    bound; bad rows are rejected at the front door without touching
//!    a replica.
//!
//! Every request in these tests targets a globally distinct row, so
//! "row → logit bits" is single-valued per run and the replayed bits
//! can be matched to client-observed bits by row alone.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bf_datagen::{generate, spec, vsplit, vsplit_multi};
use bf_ml::data::Dataset;
use bf_mpc::{channel_pair_with_network, NetworkProfile};
use blindfl::config::FedConfig;
use blindfl::gateway::{
    gateway_replica_seed, run_gateway, GatewayClient, GatewayConfig, GatewayReject, GatewayReplica,
    GatewayReport,
};
use blindfl::models::{FedSpec, MultiPartyBModel};
use blindfl::persist::{
    export_multi_party_b, export_party_a, export_party_b, import_multi_party_b, import_party_a,
    import_party_b,
};
use blindfl::serve::serve_party_a;
use blindfl::session::{multi_party_seed, party_seed, run_pair, Role, Session};
use blindfl::train::{train_federated, train_federated_multi, FedTrainConfig};

const TRAIN_SEED: u64 = 41;
const SERVE_SEED: u64 = 42;
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn train_cfg(epochs: usize) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs,
            batch_size: 8,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

/// Train a two-party LR and export both halves through the
/// persistence format (the gateway path is always
/// train → persist → serve).
fn train_and_export(cfg: &FedConfig, rows: usize) -> (Vec<u8>, Vec<u8>, Dataset, Dataset) {
    let ds = spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 7);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        cfg,
        &train_cfg(1),
        train_v.party_a,
        train_v.party_b,
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    (
        export_party_a(&outcome.party_a),
        export_party_b(&outcome.party_b),
        test_v.party_a,
        test_v.party_b,
    )
}

/// Stand up a 2-party gateway (replica pool over in-process guest
/// links, TCP front door), run `drive` against it, then drain.
fn two_party_gateway<T: Send>(
    cfg: &FedConfig,
    bytes_a: &[u8],
    bytes_b: &[u8],
    store_a: &Dataset,
    store_b: &Dataset,
    n_replicas: usize,
    gw_cfg: &GatewayConfig,
    net: Option<NetworkProfile>,
    drive: impl FnOnce(SocketAddr) -> T + Send,
) -> (GatewayReport, T) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut replicas = Vec::new();
        for r in 0..n_replicas {
            let (ep_a, ep_b) = match net {
                Some(p) => channel_pair_with_network(p),
                None => bf_mpc::channel_pair(),
            };
            let seed = gateway_replica_seed(SERVE_SEED, r);
            let cfg_a = cfg.clone();
            let bytes_a = bytes_a.to_vec();
            let store_a = store_a.clone();
            std::thread::Builder::new()
                .name(format!("gw-guest-{r}"))
                .stack_size(16 << 20)
                .spawn_scoped(s, move || {
                    let mut sess =
                        Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, seed))
                            .unwrap();
                    let mut model = import_party_a(&bytes_a).unwrap();
                    serve_party_a(&mut sess, &mut model, &store_a).unwrap();
                })
                .unwrap();
            let sess =
                Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, seed)).unwrap();
            let model = import_party_b(bytes_b).unwrap();
            replicas.push(GatewayReplica::TwoParty { sess, model });
        }
        let stop_ref = &stop;
        let gw = std::thread::Builder::new()
            .name("gateway".into())
            .stack_size(16 << 20)
            .spawn_scoped(s, move || {
                run_gateway(listener, replicas, store_b, gw_cfg, stop_ref).unwrap()
            })
            .unwrap();
        let out = drive(addr);
        stop.store(true, Ordering::Relaxed);
        (gw.join().unwrap(), out)
    })
}

/// Replay one replica's recorded batch partitions through the direct
/// forward on fresh sessions with the replica's seed; returns
/// row → logit bits (rows are globally distinct in these tests).
fn replay_two_party(
    cfg: &FedConfig,
    bytes_a: &[u8],
    bytes_b: &[u8],
    store_a: &Dataset,
    store_b: &Dataset,
    seed: u64,
    partitions: &[Vec<u32>],
) -> HashMap<u64, Vec<u64>> {
    let parts: Vec<Vec<usize>> = partitions
        .iter()
        .map(|p| p.iter().map(|&r| r as usize).collect())
        .collect();
    let bytes_a = bytes_a.to_vec();
    let store_a = store_a.clone();
    let parts_a = parts.clone();
    let (_, map) = run_pair(
        cfg,
        seed,
        move |mut sess| {
            let mut model = import_party_a(&bytes_a).unwrap();
            for p in &parts_a {
                model.predict_batch(&mut sess, &store_a.select(p)).unwrap();
            }
        },
        move |mut sess| {
            let mut model = import_party_b(bytes_b).unwrap();
            let mut map = HashMap::new();
            for p in &parts {
                let logits = model.predict_batch(&mut sess, &store_b.select(p)).unwrap();
                for (k, &row) in p.iter().enumerate() {
                    let bits: Vec<u64> = logits.row(k).iter().map(|v| v.to_bits()).collect();
                    map.insert(row as u64, bits);
                }
            }
            map
        },
    );
    map
}

/// A pipelined client fleet: each plan's rows are submitted
/// back-to-back on one connection, then every reply is drained in
/// order. Returns per-client (row, bits-or-reject) in reply order.
type ClientLog = Vec<(u64, Result<Vec<u64>, GatewayReject>)>;

fn drive_clients(addr: SocketAddr, plans: Vec<Vec<u64>>) -> Vec<ClientLog> {
    std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                s.spawn(move || {
                    let mut client = GatewayClient::connect(addr, CONNECT_TIMEOUT).unwrap();
                    for &row in &plan {
                        client.submit(row).unwrap();
                    }
                    let mut log = ClientLog::new();
                    while client.in_flight() > 0 {
                        let (row, reply) = client.recv().unwrap();
                        log.push((row, reply.map(|l| l.iter().map(|v| v.to_bits()).collect())));
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Assert every answered reply in `logs` matches the replayed bits
/// for its row, and return how many replies were answered.
fn check_parity_against(logs: &[ClientLog], replayed: &HashMap<u64, Vec<u64>>) -> usize {
    let mut answered = 0;
    for log in logs {
        for (row, reply) in log {
            let bits = reply.as_ref().expect("reply was a rejection");
            assert_eq!(
                bits,
                replayed
                    .get(row)
                    .unwrap_or_else(|| panic!("row {row} absent from the replay")),
                "row {row}: gateway bits diverged from the direct forward"
            );
            answered += 1;
        }
    }
    answered
}

/// One full 2-party parity cell: serve `rows` globally-distinct rows
/// through `n_replicas` replicas from `n_clients` pipelined clients,
/// then replay every replica's partitions and compare bits.
fn check_two_party_cell(cfg: &FedConfig, rows: usize, n_replicas: usize, n_clients: usize) {
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(cfg, rows);
    let n = store_a.rows();
    let plans: Vec<Vec<u64>> = (0..n_clients)
        .map(|c| ((c as u64)..(n as u64)).step_by(n_clients).collect())
        .collect();
    let (report, logs) = two_party_gateway(
        cfg,
        &bytes_a,
        &bytes_b,
        &store_a,
        &store_b,
        n_replicas,
        &GatewayConfig {
            max_batch: 8,
            ..GatewayConfig::default()
        },
        None,
        |addr| drive_clients(addr, plans),
    );
    // Accounting: every request answered, nothing rejected or lost.
    assert_eq!(report.answered, n as u64);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.orphaned, 0);
    assert_eq!(report.clients, n_clients as u64);
    assert_eq!(report.requests(), n as u64);
    assert_eq!(report.replicas.len(), n_replicas);
    assert!(report.replica_failures.is_empty());
    assert!(report.sustained_qps() > 0.0);
    assert!(report.p99_latency_secs() >= report.p50_latency_secs());
    // Parity by replay: each replica's exact partitions, re-run
    // directly under the replica's seed.
    let mut replayed = HashMap::new();
    for (r, rep) in report.replicas.iter().enumerate() {
        assert_eq!(
            rep.batch_rows.iter().map(Vec::len).sum::<usize>() as u64,
            rep.requests,
            "replica {r} partition record is incomplete"
        );
        replayed.extend(replay_two_party(
            cfg,
            &bytes_a,
            &bytes_b,
            &store_a,
            &store_b,
            gateway_replica_seed(SERVE_SEED, r),
            &rep.batch_rows,
        ));
    }
    assert_eq!(check_parity_against(&logs, &replayed), n);
}

#[test]
fn gateway_parity_two_party_plain() {
    check_two_party_cell(&FedConfig::plain(), 64, 3, 4);
}

#[test]
fn gateway_parity_two_party_paillier_packed() {
    check_two_party_cell(&FedConfig::paillier_test(), 320, 2, 2);
}

/// Multi-guest fixture: train an `M = 2` model and export every half.
fn train_and_export_multi(
    cfg: &FedConfig,
    m: usize,
    rows: usize,
) -> (Vec<Vec<u8>>, Vec<u8>, Vec<Dataset>, Dataset) {
    let ds = spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 7);
    let train_v = vsplit_multi(&train, m);
    let test_v = vsplit_multi(&test, m);
    let outcome = train_federated_multi(
        &FedSpec::Glm { out: 1 },
        cfg,
        &train_cfg(1),
        train_v.guests,
        train_v.party_b,
        test_v.guests.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    let guest_bytes = outcome
        .guests
        .iter()
        .map(|g| export_party_a(&g.model))
        .collect();
    (
        guest_bytes,
        export_multi_party_b(&outcome.party_b.model),
        test_v.guests,
        test_v.party_b,
    )
}

/// Stand up a multi-guest gateway and drive it (multi analogue of
/// [`two_party_gateway`]).
fn multi_guest_gateway<T: Send>(
    cfg: &FedConfig,
    guest_bytes: &[Vec<u8>],
    host_bytes: &[u8],
    guest_stores: &[Dataset],
    store_b: &Dataset,
    n_replicas: usize,
    gw_cfg: &GatewayConfig,
    drive: impl FnOnce(SocketAddr) -> T + Send,
) -> (GatewayReport, T) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut replicas = Vec::new();
        for r in 0..n_replicas {
            let seed = gateway_replica_seed(SERVE_SEED, r);
            let mut sessions = Vec::new();
            for (i, (bytes, store)) in guest_bytes.iter().zip(guest_stores).enumerate() {
                let (ep_a, ep_b) = bf_mpc::channel_pair();
                let cfg_a = cfg.clone();
                let bytes = bytes.clone();
                let store = store.clone();
                std::thread::Builder::new()
                    .name(format!("gw-guest-{r}-{i}"))
                    .stack_size(16 << 20)
                    .spawn_scoped(s, move || {
                        let mut sess = Session::handshake(
                            ep_a,
                            cfg_a,
                            Role::A,
                            multi_party_seed(Role::A, i, seed),
                        )
                        .unwrap();
                        let mut model = import_party_a(&bytes).unwrap();
                        serve_party_a(&mut sess, &mut model, &store).unwrap();
                    })
                    .unwrap();
                sessions.push(
                    Session::handshake(
                        ep_b,
                        cfg.clone(),
                        Role::B,
                        multi_party_seed(Role::B, i, seed),
                    )
                    .unwrap(),
                );
            }
            let model: MultiPartyBModel = import_multi_party_b(host_bytes).unwrap();
            replicas.push(GatewayReplica::MultiGuest { sessions, model });
        }
        let stop_ref = &stop;
        let gw = std::thread::Builder::new()
            .name("gateway".into())
            .stack_size(16 << 20)
            .spawn_scoped(s, move || {
                run_gateway(listener, replicas, store_b, gw_cfg, stop_ref).unwrap()
            })
            .unwrap();
        let out = drive(addr);
        stop.store(true, Ordering::Relaxed);
        (gw.join().unwrap(), out)
    })
}

/// Replay one multi-guest replica's partitions directly.
fn replay_multi_guest(
    cfg: &FedConfig,
    guest_bytes: &[Vec<u8>],
    host_bytes: &[u8],
    guest_stores: &[Dataset],
    store_b: &Dataset,
    seed: u64,
    partitions: &[Vec<u32>],
) -> HashMap<u64, Vec<u64>> {
    let parts: Vec<Vec<usize>> = partitions
        .iter()
        .map(|p| p.iter().map(|&r| r as usize).collect())
        .collect();
    std::thread::scope(|s| {
        let mut host_eps = Vec::new();
        for (i, (bytes, store)) in guest_bytes.iter().zip(guest_stores).enumerate() {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            host_eps.push(ep_b);
            let cfg_a = cfg.clone();
            let bytes = bytes.clone();
            let store = store.clone();
            let parts = parts.clone();
            std::thread::Builder::new()
                .name(format!("replay-guest-{i}"))
                .stack_size(16 << 20)
                .spawn_scoped(s, move || {
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, seed),
                    )
                    .unwrap();
                    let mut model = import_party_a(&bytes).unwrap();
                    for p in &parts {
                        model.predict_batch(&mut sess, &store.select(p)).unwrap();
                    }
                })
                .unwrap();
        }
        let mut sessions: Vec<Session> = host_eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, seed))
                    .unwrap()
            })
            .collect();
        let mut model: MultiPartyBModel = import_multi_party_b(host_bytes).unwrap();
        let mut map = HashMap::new();
        for p in &parts {
            let logits = model
                .predict_batch(&mut sessions, &store_b.select(p))
                .unwrap();
            for (k, &row) in p.iter().enumerate() {
                let bits: Vec<u64> = logits.row(k).iter().map(|v| v.to_bits()).collect();
                map.insert(row as u64, bits);
            }
        }
        map
    })
}

/// One full multi-guest parity cell.
fn check_multi_guest_cell(cfg: &FedConfig, rows: usize, n_replicas: usize, n_clients: usize) {
    let m = 2;
    let (guest_bytes, host_bytes, guest_stores, store_b) = train_and_export_multi(cfg, m, rows);
    let n = store_b.rows();
    let plans: Vec<Vec<u64>> = (0..n_clients)
        .map(|c| ((c as u64)..(n as u64)).step_by(n_clients).collect())
        .collect();
    let (report, logs) = multi_guest_gateway(
        cfg,
        &guest_bytes,
        &host_bytes,
        &guest_stores,
        &store_b,
        n_replicas,
        &GatewayConfig {
            max_batch: 8,
            ..GatewayConfig::default()
        },
        |addr| drive_clients(addr, plans),
    );
    assert_eq!(report.answered, n as u64);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.orphaned, 0);
    assert_eq!(report.requests(), n as u64);
    assert!(report.replica_failures.is_empty());
    let mut replayed = HashMap::new();
    for (r, rep) in report.replicas.iter().enumerate() {
        replayed.extend(replay_multi_guest(
            cfg,
            &guest_bytes,
            &host_bytes,
            &guest_stores,
            &store_b,
            gateway_replica_seed(SERVE_SEED, r),
            &rep.batch_rows,
        ));
    }
    assert_eq!(check_parity_against(&logs, &replayed), n);
}

#[test]
fn gateway_parity_multi_guest_plain() {
    check_multi_guest_cell(&FedConfig::plain(), 128, 2, 3);
}

#[test]
fn gateway_parity_multi_guest_paillier_packed() {
    check_multi_guest_cell(&FedConfig::paillier_test(), 640, 2, 2);
}

#[test]
fn client_churn_never_stalls_the_gateway_or_corrupts_replies() {
    // 3 surviving clients serve 48 distinct rows; 2 churn clients
    // submit 8 distinct rows each and vanish without reading a single
    // reply (their sockets close while their requests are anywhere
    // from kernel buffer to mid-batch). The gateway must drain, the
    // survivors' bits must still replay exactly, and every admitted
    // churned request must be accounted as answered or orphaned.
    let cfg = FedConfig::plain();
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(&cfg, 64);
    // Survivors split the first 3/4 of the store's rows; churners
    // split the rest — every row globally distinct so the replay map
    // is single-valued.
    let n = store_a.rows() as u64;
    let split = n * 3 / 4;
    let mid = split + (n - split) / 2;
    let survivor_rows: Vec<Vec<u64>> = (0..3u64).map(|c| (c..split).step_by(3).collect()).collect();
    let churn_rows: Vec<Vec<u64>> = vec![(split..mid).collect(), (mid..n).collect()];
    let total_survivor: usize = survivor_rows.iter().map(Vec::len).sum();
    let total_churn: u64 = churn_rows.iter().map(|p| p.len() as u64).sum();
    let (report, logs) = two_party_gateway(
        &cfg,
        &bytes_a,
        &bytes_b,
        &store_a,
        &store_b,
        2,
        &GatewayConfig {
            max_batch: 4,
            ..GatewayConfig::default()
        },
        None,
        |addr| {
            std::thread::scope(|s| {
                // Churners: submit, then drop the connection cold.
                for plan in churn_rows {
                    s.spawn(move || {
                        let mut client = GatewayClient::connect(addr, CONNECT_TIMEOUT).unwrap();
                        for &row in &plan {
                            client.submit(row).unwrap();
                        }
                        // Stagger the drops so some requests die in
                        // kernel buffers and some mid-batch.
                        std::thread::sleep(Duration::from_millis(plan[0] % 3));
                        drop(client);
                    });
                }
                drive_clients(addr, survivor_rows)
            })
        },
    );
    // Survivors: every reply delivered and bit-exact under replay.
    let mut replayed = HashMap::new();
    for (r, rep) in report.replicas.iter().enumerate() {
        replayed.extend(replay_two_party(
            &cfg,
            &bytes_a,
            &bytes_b,
            &store_a,
            &store_b,
            gateway_replica_seed(SERVE_SEED, r),
            &rep.batch_rows,
        ));
    }
    assert_eq!(check_parity_against(&logs, &replayed), total_survivor);
    // Accounting: nothing vanishes. All survivor requests are
    // answered; churned requests are either answered-before-the-drop,
    // orphaned, or never admitted (died in a kernel buffer).
    assert_eq!(report.rejected, 0);
    assert!(report.answered >= total_survivor as u64);
    assert!(report.answered + report.orphaned <= total_survivor as u64 + total_churn);
    // Every forwarded request was delivered or orphaned.
    assert_eq!(report.requests(), report.answered + report.orphaned);
    assert!(report.replica_failures.is_empty());
    assert_eq!(report.clients, 5);
}

#[test]
fn shed_load_rejects_overflow_and_accounts_for_it() {
    // One replica behind a WAN-latency link, a 2-deep shard, and a
    // client that pipelines 32 requests: with shed_load the gateway
    // answers GW_OVERLOADED immediately instead of queueing without
    // bound, and requests + rejections add up exactly.
    let cfg = FedConfig::plain();
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(&cfg, 500);
    let n = store_a.rows() as u64;
    let (report, log) = two_party_gateway(
        &cfg,
        &bytes_a,
        &bytes_b,
        &store_a,
        &store_b,
        1,
        &GatewayConfig {
            max_batch: 2,
            shard_depth: 2,
            shed_load: true,
            ..GatewayConfig::default()
        },
        Some(NetworkProfile::wan_100mbps()),
        |addr| {
            let mut client = GatewayClient::connect(addr, CONNECT_TIMEOUT).unwrap();
            for row in 0..n {
                client.submit(row).unwrap();
            }
            let mut log = ClientLog::new();
            while client.in_flight() > 0 {
                let (row, reply) = client.recv().unwrap();
                log.push((row, reply.map(|l| l.iter().map(|v| v.to_bits()).collect())));
            }
            log
        },
    );
    let answered = log.iter().filter(|(_, r)| r.is_ok()).count() as u64;
    let shed = log
        .iter()
        .filter(|(_, r)| r == &Err(GatewayReject::Overloaded))
        .count() as u64;
    assert_eq!(answered + shed, n, "every reply is logits or Overloaded");
    assert!(answered > 0, "the admitted head of the pipeline is served");
    assert!(shed > 0, "a 2-deep shard cannot absorb 32 pipelined rows");
    assert_eq!(report.answered, answered);
    assert_eq!(report.rejected, shed);
    assert_eq!(report.requests(), answered);
    assert_eq!(report.answered + report.rejected, n);
}

#[test]
fn bad_rows_are_rejected_at_the_front_door() {
    let cfg = FedConfig::plain();
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(&cfg, 250);
    let n = store_a.rows() as u64;
    let (report, log) = two_party_gateway(
        &cfg,
        &bytes_a,
        &bytes_b,
        &store_a,
        &store_b,
        1,
        &GatewayConfig::default(),
        None,
        |addr| {
            let mut client = GatewayClient::connect(addr, CONNECT_TIMEOUT).unwrap();
            client.submit(0).unwrap();
            client.submit(9999).unwrap(); // past the store
            client.submit(u64::MAX).unwrap(); // would truncate as u32
            client.submit(n - 1).unwrap();
            let mut log = ClientLog::new();
            while client.in_flight() > 0 {
                let (row, reply) = client.recv().unwrap();
                log.push((row, reply.map(|l| l.iter().map(|v| v.to_bits()).collect())));
            }
            log
        },
    );
    // FIFO reply order with per-request status.
    assert_eq!(log.len(), 4);
    assert_eq!(log[0].0, 0);
    assert!(log[0].1.is_ok());
    assert_eq!(log[1], (9999, Err(GatewayReject::BadRow)));
    assert_eq!(log[2], (u64::MAX, Err(GatewayReject::BadRow)));
    assert_eq!(log[3].0, n - 1);
    assert!(log[3].1.is_ok());
    // Bad rows never reach a replica and are fully accounted.
    assert_eq!(report.answered, 2);
    assert_eq!(report.rejected, 2);
    assert_eq!(report.requests(), 2);
    assert_eq!(
        report.replicas[0].rejected, 0,
        "front-door rejections never reach the replica"
    );
}
