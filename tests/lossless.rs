//! Lossless-equivalence tests (the paper's core accuracy claim):
//! federated training must match plaintext training on the
//! reconstructed parameters *exactly* (up to fixed-point/f64 noise),
//! for both source-layer kinds and both crypto backends.

use bf_datagen::{generate, spec, vsplit};
use bf_ml::TrainConfig;
use bf_tensor::Dense;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedOutcome, FedTrainConfig};

fn run(cfg: &FedConfig, epochs: usize, seed: u64) -> (FedOutcome, Dense, Dense) {
    let ds = spec("a9a").scaled(200, 1);
    let (train, test) = generate(&ds, 0x105);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs,
            batch_size: 64,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        cfg,
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        seed,
    );
    let w_a = outcome
        .party_a
        .matmul()
        .unwrap()
        .u_own()
        .add(outcome.party_b.matmul().unwrap().v_peer());
    let w_b = outcome
        .party_b
        .matmul()
        .unwrap()
        .u_own()
        .add(outcome.party_a.matmul().unwrap().v_peer());
    (outcome, w_a, w_b)
}

#[test]
fn paillier_and_plain_backends_agree() {
    // Same seed ⇒ same initial shares and batch schedule; the two
    // backends must produce (near-)identical trained weights — the
    // only difference is fixed-point quantisation inside Paillier.
    let (_, wa_plain, wb_plain) = run(&FedConfig::plain(), 2, 9);
    let mut cfg = FedConfig::paillier_test();
    cfg.frac_bits = 32;
    let (_, wa_pail, wb_pail) = run(&cfg, 2, 9);
    let err_a = wa_plain.sub(&wa_pail).max_abs();
    let err_b = wb_plain.sub(&wb_pail).max_abs();
    assert!(err_a < 1e-3, "W_A backend divergence {err_a}");
    assert!(err_b < 1e-3, "W_B backend divergence {err_b}");
}

#[test]
fn metrics_match_across_backends() {
    let (out_plain, _, _) = run(&FedConfig::plain(), 2, 11);
    let (out_pail, _, _) = run(&FedConfig::paillier_test(), 2, 11);
    let gap = (out_plain.report.test_metric - out_pail.report.test_metric).abs();
    assert!(gap < 5e-3, "metric gap across backends {gap}");
}

#[test]
fn packed_and_scalar_paillier_are_bit_identical() {
    // The packed fast path's contract is *exact* equality, not
    // tolerance: slot encode/decode reuses the scalar codec's rounding
    // and f64 conversion, so every loss, weight, metric and logit must
    // match the scalar run bit-for-bit. An MLP head gives the MatMul
    // source a multi-column weight matrix that genuinely packs
    // (Glm out=1 would fall back to scalar columns).
    use bf_paillier::PaillierMode;
    let run_mode = |mode: PaillierMode| {
        let ds = spec("a9a").scaled(120, 1);
        let (train, test) = generate(&ds, 0x105);
        let train_v = vsplit(&train);
        let test_v = vsplit(&test);
        let tc = FedTrainConfig {
            base: TrainConfig {
                epochs: 1,
                batch_size: 64,
                ..Default::default()
            },
            snapshot_u_a: false,
            ..Default::default()
        };
        train_federated(
            &FedSpec::Mlp { widths: vec![4, 1] },
            &FedConfig::paillier_test().with_paillier_mode(mode),
            &tc,
            train_v.party_a.clone(),
            train_v.party_b.clone(),
            test_v.party_a.clone(),
            test_v.party_b.clone(),
            21,
        )
    };
    let scalar = run_mode(PaillierMode::Scalar);
    let packed = run_mode(PaillierMode::Packed);
    assert_eq!(scalar.report.losses, packed.report.losses);
    assert_eq!(scalar.report.test_metric, packed.report.test_metric);
    assert_eq!(
        scalar.report.test_logits.data(),
        packed.report.test_logits.data()
    );
    assert_eq!(
        scalar.party_a.matmul().unwrap().u_own().data(),
        packed.party_a.matmul().unwrap().u_own().data()
    );
    assert_eq!(
        scalar.party_b.matmul().unwrap().v_peer().data(),
        packed.party_b.matmul().unwrap().v_peer().data()
    );
    // Packing must also shrink the ciphertext traffic.
    assert!(
        packed.report.bytes_a_to_b < scalar.report.bytes_a_to_b,
        "packed A→B traffic {} !< scalar {}",
        packed.report.bytes_a_to_b,
        scalar.report.bytes_a_to_b
    );
    assert!(packed.report.bytes_b_to_a < scalar.report.bytes_b_to_a);
}

#[test]
fn forward_outputs_match_plaintext_model() {
    // Reconstruct W after training and verify the federated test
    // logits equal X·W + b computed in the clear.
    let (outcome, w_a, w_b) = run(&FedConfig::plain(), 2, 13);
    let ds = spec("a9a").scaled(200, 1);
    let (_, test) = generate(&ds, 0x105);
    let test_v = vsplit(&test);
    let z_a = test_v.party_a.num.as_ref().unwrap().matmul(&w_a);
    let z_b = test_v.party_b.num.as_ref().unwrap().matmul(&w_b);
    let mut joint = z_a.add(&z_b);
    // Add Party B's bias (reconstructed from the logits of any row):
    // logits - (z_a + z_b) is constant = bias.
    let bias = outcome.report.test_logits.get(0, 0) - joint.get(0, 0);
    for v in joint.data_mut() {
        *v += bias;
    }
    assert!(
        joint.approx_eq(&outcome.report.test_logits, 1e-6),
        "forward mismatch {}",
        joint.sub(&outcome.report.test_logits).max_abs()
    );
}
