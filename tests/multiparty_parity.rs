//! Multi-guest equivalence suite (paper Appendix C): an `M`-guest run
//! must be **loss-equivalent to the single-A run on the horizontally
//! concatenated guest features**, on both crypto backends and both
//! transports, with byte-identical per-link traffic accounting across
//! transports.
//!
//! The equivalence is proved in three links, each at its strongest
//! achievable tolerance:
//!
//! 1. **M = 1 is the single-A baseline, bit for bit**: a one-guest
//!    multi-stack run reproduces the classic two-party
//!    `train_federated` run exactly (same losses, same metric, same
//!    bytes up to the guest's `Hello` prologue) — and
//!    `vsplit_multi(ds, 1)`'s guest slice *is* `vsplit(ds)`'s Party A.
//! 2. **Every M trains the same virtually-joint matrix**: for
//!    `M ∈ {1, 2, 3}`, the federated per-batch loss trajectory matches
//!    a collocated plaintext twin — momentum SGD started from the
//!    run's *reconstructed* initialisation
//!    `W = [W_A(1); …; W_A(M); W_B]` on the concatenated features,
//!    driven through the identical batch schedule — within 1e-6 per
//!    batch, on Plain and on Paillier (36 fractional bits put the
//!    quantisation noise orders of magnitude below the tolerance).
//!    Equivalence of the M-guest and single-A runs to their twins is
//!    exactly "same SGD trajectory, different random init" — the only
//!    sense in which runs of different topologies can agree, since
//!    each guest draws its own initial shares.
//! 3. **Transports cannot matter**: in-process and TCP runs of the
//!    same M are bit-identical in losses/metric and byte-identical in
//!    per-link `TrafficStats`, both directions.

use std::net::TcpListener;

use bf_datagen::{generate, spec as dataset_spec, vsplit_multi};
use bf_ml::models::GlmModel;
use bf_mpc::Endpoint;
use bf_tensor::Dense;
use blindfl::config::{Backend, FedConfig};
use blindfl::models::FedSpec;
use blindfl::multiparty::{collect_guests, send_hello};
use blindfl::session::{multi_party_seed, Role, Session};
use blindfl::train::{
    run_party_a, run_party_b_multi, train_federated, train_federated_multi, FedTrainConfig,
};

const SEED: u64 = 41;
const DATA_SEED: u64 = 13;
const EPOCHS: usize = 2;
const BS: usize = 16;

fn train_cfg(epochs: usize) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs,
            batch_size: BS,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

/// High-precision Paillier: 36 fractional bits push the fixed-point
/// quantisation far below the suite's 1e-6 loss tolerance while the
/// 256-bit test modulus keeps the runs fast.
fn paillier_hi() -> FedConfig {
    let mut cfg = FedConfig::paillier_test();
    cfg.frac_bits = 36;
    cfg
}

/// Everything one multi-guest training cell produces.
struct MultiRun {
    losses: Vec<f64>,
    test_metric: f64,
    bytes_a_to_b: Vec<u64>,
    bytes_b_to_a: Vec<u64>,
    /// Reconstructed stacked weights `[W_A(1); …; W_A(M); W_B]`.
    weights: Dense,
}

/// Reconstruct the stacked effective weights from the trained halves.
fn stacked_weights(
    guests: &[blindfl::train::PartyARun],
    party_b: &blindfl::models::MultiPartyBModel,
) -> Dense {
    let mmb = party_b.matmul().expect("Glm has a MatMul source");
    let mut rows: Vec<f64> = Vec::new();
    let mut n_rows = 0;
    let out = mmb.u_own().cols();
    for (i, g) in guests.iter().enumerate() {
        let w_a = g.model.matmul().unwrap().u_own().add(mmb.v_a(i));
        rows.extend_from_slice(w_a.data());
        n_rows += w_a.rows();
    }
    let mut w_b = mmb.u_own().clone();
    for g in guests {
        w_b.add_assign(g.model.matmul().unwrap().v_peer());
    }
    rows.extend_from_slice(w_b.data());
    n_rows += w_b.rows();
    Dense::from_vec(n_rows, out, rows)
}

/// One M-guest federated-LR run. `tcp = false` uses the in-process
/// harness; `tcp = true` runs one socket per guest with the guests
/// connecting concurrently (the hellos restore link order).
fn run_multi(cfg: &FedConfig, m: usize, rows: usize, epochs: usize, tcp: bool) -> MultiRun {
    let ds = dataset_spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let train_v = vsplit_multi(&train, m);
    let test_v = vsplit_multi(&test, m);
    let fed = FedSpec::Glm { out: 1 };
    let tc = train_cfg(epochs);

    if !tcp {
        let out = train_federated_multi(
            &fed,
            cfg,
            &tc,
            train_v.guests,
            train_v.party_b,
            test_v.guests,
            test_v.party_b,
            SEED,
        );
        return MultiRun {
            weights: stacked_weights(&out.guests, &out.party_b.model),
            losses: out.report.losses,
            test_metric: out.report.test_metric,
            bytes_a_to_b: out.report.bytes_a_to_b_per_link,
            bytes_b_to_a: out.report.bytes_b_to_a_per_link,
        };
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let mut handles = Vec::new();
    for (i, (train_a, test_a)) in train_v.guests.into_iter().zip(test_v.guests).enumerate() {
        let cfg_a = cfg.clone();
        let fed_a = fed.clone();
        let tc_a = tc.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("parity-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    let ep = Endpoint::tcp_connect(addr).expect("guest connect");
                    send_hello(&ep, i, m).expect("guest hello");
                    let mut sess =
                        Session::handshake(ep, cfg_a, Role::A, multi_party_seed(Role::A, i, SEED))
                            .expect("guest handshake");
                    run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a).expect("guest run")
                })
                .expect("spawn guest"),
        );
    }
    let accepted: Vec<Endpoint> = (0..m)
        .map(|_| Endpoint::tcp_accept(&listener).expect("accept"))
        .collect();
    let ordered = collect_guests(accepted, m).expect("fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, SEED))
                .expect("host handshake")
        })
        .collect();
    let b = run_party_b_multi(&mut sessions, &fed, &tc, &train_v.party_b, &test_v.party_b)
        .expect("party B run");
    let guests: Vec<blindfl::train::PartyARun> = handles
        .into_iter()
        .map(|h| h.join().expect("guest thread"))
        .collect();
    MultiRun {
        weights: stacked_weights(&guests, &b.model),
        losses: b.losses,
        test_metric: b.test_metric,
        bytes_a_to_b: guests.iter().map(|g| g.bytes_sent).collect(),
        bytes_b_to_a: b.bytes_sent_per_link,
    }
}

/// The collocated plaintext twin: momentum SGD from the reconstructed
/// federated initialisation, on the full concatenated feature matrix,
/// through the identical batch schedule. Returns (per-batch losses,
/// test metric).
fn plaintext_twin(cfg: &FedConfig, w0: Dense, rows: usize, epochs: usize) -> (Vec<f64>, f64) {
    let ds = dataset_spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let mut model = GlmModel::from_weights(w0);
    let base = bf_ml::TrainConfig {
        epochs,
        batch_size: BS,
        lr: cfg.lr,
        momentum: cfg.momentum,
        ..Default::default()
    };
    let report = bf_ml::train(&mut model, &train, &test, &base);
    (report.losses, report.test_metric)
}

/// Max |a - b| over two per-batch loss curves (panics on length skew).
fn max_gap(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "batch counts differ");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Links 1 + 2 for one backend: every `M ∈ {1, 2, 3}` matches its
/// concatenated collocated twin within `tol` per batch, and the twins
/// all train the same matrix — which ties each M-guest run to the
/// single-A baseline run asserted in the same loop.
fn assert_concat_equivalence(cfg: FedConfig, rows: usize, tol: f64) {
    for m in [1usize, 2, 3] {
        // Zero-epoch run captures the reconstructed initialisation.
        let init = run_multi(&cfg, m, rows, 0, false);
        assert!(init.losses.is_empty());
        let full = run_multi(&cfg, m, rows, EPOCHS, false);
        let (twin_losses, twin_metric) = plaintext_twin(&cfg, init.weights, rows, EPOCHS);
        let gap = max_gap(&full.losses, &twin_losses);
        assert!(
            gap <= tol,
            "M={m}: federated loss trajectory diverged from the concatenated \
             collocated twin (max gap {gap:e} > {tol:e})"
        );
        let metric_gap = (full.test_metric - twin_metric).abs();
        assert!(
            metric_gap <= tol,
            "M={m}: test metric diverged from the twin ({metric_gap:e})"
        );
    }
}

#[test]
fn plain_multi_guest_matches_concatenated_single_a_baseline() {
    assert_concat_equivalence(FedConfig::plain(), 64, 1e-6);
}

#[test]
fn paillier_multi_guest_matches_concatenated_single_a_baseline() {
    assert_concat_equivalence(paillier_hi(), 24, 1e-6);
}

#[test]
fn single_guest_is_the_two_party_baseline_bit_for_bit() {
    // Link 1 at full strength: the M = 1 multi run *is* the classic
    // two-party single-A run — identical losses, metric, and traffic
    // (the Hello prologue is the only extra frame, and its size is
    // exactly accounted).
    let rows = 64;
    let ds = dataset_spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let train_v = bf_datagen::vsplit(&train);
    let test_v = bf_datagen::vsplit(&test);
    let cfg = FedConfig::plain();
    let tc = train_cfg(EPOCHS);
    let two = train_federated(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        SEED,
    );
    let multi = run_multi(&cfg, 1, rows, EPOCHS, false);
    assert_eq!(two.report.losses, multi.losses);
    assert_eq!(two.report.test_metric, multi.test_metric);
    assert_eq!(multi.bytes_b_to_a, vec![two.report.bytes_b_to_a]);
    let hello = bf_mpc::Msg::Hello { index: 0, total: 1 }.wire_size() as u64;
    assert_eq!(multi.bytes_a_to_b, vec![two.report.bytes_a_to_b + hello]);
}

/// Link 3 for one backend: in-process and TCP runs are bit-identical
/// in losses/metric and byte-identical per link, both directions.
fn assert_transport_parity(cfg: FedConfig, rows: usize) {
    for m in [2usize, 3] {
        let inproc = run_multi(&cfg, m, rows, EPOCHS, false);
        let tcp = run_multi(&cfg, m, rows, EPOCHS, true);
        assert_eq!(
            inproc.losses, tcp.losses,
            "M={m}: TCP loss curve diverged from in-process"
        );
        assert_eq!(
            inproc.test_metric, tcp.test_metric,
            "M={m}: metric diverged"
        );
        assert_eq!(
            inproc.bytes_a_to_b, tcp.bytes_a_to_b,
            "M={m}: per-link A→B bytes diverged across transports"
        );
        assert_eq!(
            inproc.bytes_b_to_a, tcp.bytes_b_to_a,
            "M={m}: per-link B→A bytes diverged across transports"
        );
        assert!(inproc.bytes_a_to_b.iter().all(|&b| b > 0));
        assert!(inproc.bytes_b_to_a.iter().all(|&b| b > 0));
        // Same trained model on both transports, coordinate for
        // coordinate.
        assert_eq!(inproc.weights.data(), tcp.weights.data());
    }
}

#[test]
fn plain_transport_parity_per_link() {
    assert_transport_parity(FedConfig::plain(), 64);
}

#[test]
fn paillier_transport_parity_per_link() {
    assert_transport_parity(paillier_hi(), 24);
}

#[test]
fn paillier_backend_uses_real_ciphertexts() {
    // Guard against the hi-precision config accidentally degrading to
    // the Plain backend (which would vacuously pass the 1e-6 bars).
    assert!(matches!(
        paillier_hi().backend,
        Backend::Paillier { key_bits: 256 }
    ));
}
