//! Cross-backend determinism for the pipelined training engine.
//!
//! The contract (`blindfl::engine` docs): pipelining reorders
//! wall-clock work, never math or wire content. One seed, four runs —
//! in-process sync, in-process pipelined, TCP sync, TCP pipelined —
//! must produce **bit-identical** per-batch (and hence per-epoch) loss
//! curves and **exactly equal** A→B / B→A `TrafficStats` byte counts.
//! Verified on the Plain and the Paillier backend.

use std::net::TcpListener;

use bf_datagen::{generate, spec as dataset_spec, vsplit};
use bf_mpc::Endpoint;
use blindfl::config::FedConfig;
use blindfl::engine::TrainMode;
use blindfl::models::FedSpec;
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b, FedTrainConfig};

const SEED: u64 = 29;
const DATA_SEED: u64 = 3;
const EPOCHS: usize = 2;

fn train_cfg(mode: TrainMode) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: EPOCHS,
            batch_size: 16,
            ..Default::default()
        },
        snapshot_u_a: false,
        mode,
        ..Default::default()
    }
}

/// One full federated-LR run; `connect` builds the endpoint pair (or
/// the two ends of a socket). Returns per-batch losses, the test
/// metric, and (A→B, B→A) byte counts.
struct RunResult {
    losses: Vec<f64>,
    test_metric: f64,
    bytes_a_to_b: u64,
    bytes_b_to_a: u64,
}

fn run_one(cfg: &FedConfig, rows: usize, mode: TrainMode, tcp: bool) -> RunResult {
    let ds = dataset_spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, DATA_SEED);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let fed = FedSpec::Glm { out: 1 };
    let tc = train_cfg(mode);

    let (ep_a, ep_b) = if tcp {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
        let addr = listener.local_addr().unwrap();
        let guest = std::thread::spawn(move || Endpoint::tcp_connect(addr).expect("connect"));
        let host = Endpoint::tcp_accept(&listener).expect("accept");
        (guest.join().expect("guest connect"), host)
    } else {
        bf_mpc::channel_pair()
    };

    let cfg_a = cfg.clone();
    let fed_a = fed.clone();
    let tc_a = tc.clone();
    let (train_a, test_a) = (train_v.party_a.clone(), test_v.party_a.clone());
    let party_a = std::thread::Builder::new()
        .name("parity-party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess = Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SEED))
                .expect("A handshake");
            let run = run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a).expect("party A");
            run.bytes_sent
        })
        .expect("spawn party A");

    let mut sess = Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SEED))
        .expect("B handshake");
    let run_b =
        run_party_b(&mut sess, &fed, &tc, &train_v.party_b, &test_v.party_b).expect("party B");
    let bytes_a_to_b = party_a.join().expect("party A thread");
    RunResult {
        losses: run_b.losses,
        test_metric: run_b.test_metric,
        bytes_a_to_b,
        bytes_b_to_a: run_b.bytes_sent,
    }
}

/// Split a flat per-batch loss curve into per-epoch chunks (all four
/// runs share the schedule, so equal chunking is sound).
fn per_epoch(losses: &[f64]) -> Vec<&[f64]> {
    assert_eq!(losses.len() % EPOCHS, 0, "batches must divide into epochs");
    losses.chunks(losses.len() / EPOCHS).collect()
}

fn assert_four_way_parity(cfg: FedConfig, rows: usize) {
    let cells: Vec<(&str, RunResult)> = vec![
        (
            "in-process sync",
            run_one(&cfg, rows, TrainMode::Sync, false),
        ),
        (
            "in-process pipelined",
            run_one(&cfg, rows, TrainMode::pipelined(), false),
        ),
        ("tcp sync", run_one(&cfg, rows, TrainMode::Sync, true)),
        (
            "tcp pipelined",
            run_one(&cfg, rows, TrainMode::pipelined(), true),
        ),
    ];
    let (ref_name, reference) = &cells[0];
    assert!(!reference.losses.is_empty());
    assert!(reference.bytes_a_to_b > 0 && reference.bytes_b_to_a > 0);
    for (name, run) in &cells[1..] {
        // Bit-identical loss curve, compared per epoch for a readable
        // failure message.
        assert_eq!(
            run.losses.len(),
            reference.losses.len(),
            "{name}: batch count differs from {ref_name}"
        );
        for (e, (got, want)) in per_epoch(&run.losses)
            .iter()
            .zip(per_epoch(&reference.losses))
            .enumerate()
        {
            assert_eq!(got, &want, "{name}: epoch {e} loss curve diverged");
        }
        assert_eq!(
            run.test_metric, reference.test_metric,
            "{name}: test metric diverged"
        );
        // Exact traffic parity, both directions.
        assert_eq!(
            run.bytes_a_to_b, reference.bytes_a_to_b,
            "{name}: A→B bytes diverged"
        );
        assert_eq!(
            run.bytes_b_to_a, reference.bytes_b_to_a,
            "{name}: B→A bytes diverged"
        );
    }
}

#[test]
fn plain_backend_four_way_parity() {
    assert_four_way_parity(FedConfig::plain(), 64);
}

#[test]
fn paillier_backend_four_way_parity() {
    assert_four_way_parity(FedConfig::paillier_test(), 32);
}
