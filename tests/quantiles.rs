//! Property tests for the serving latency quantiles: the pool-wide
//! (merged) quantile a [`GatewayReport`] answers must be *definitionally*
//! identical to recomputing the same ceil-based nearest-rank quantile
//! over the concatenation of every replica's latency vector — merging
//! must not change the statistic. Plus the ordering and empty-sample
//! invariants the accounting docs promise.

use blindfl::gateway::GatewayReport;
use blindfl::serve::ServeReport;
use proptest::prelude::*;

/// The documented quantile definition, recomputed from scratch:
/// ceil-based nearest rank over an ascending sort.
fn nearest_rank(mut sample: Vec<f64>, q: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(f64::total_cmp);
    let n = sample.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sample[rank.clamp(1, n) - 1]
}

fn report_with(latencies: Vec<f64>) -> ServeReport {
    ServeReport {
        latencies_secs: latencies,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merged gateway quantiles equal the quantile of the concatenated
    /// per-replica samples, for every replica split and probe point.
    #[test]
    fn gateway_quantile_equals_concatenated_recompute(
        replicas in prop::collection::vec(
            prop::collection::vec(0.0f64..10.0, 0..40),
            1..5,
        ),
        q in 0.0f64..=1.0,
    ) {
        let concatenated: Vec<f64> = replicas.iter().flatten().copied().collect();
        let report = GatewayReport {
            replicas: replicas.into_iter().map(report_with).collect(),
            ..Default::default()
        };
        let merged = report.latency_quantile_secs(q);
        let direct = nearest_rank(concatenated, q);
        prop_assert_eq!(merged.to_bits(), direct.to_bits());
    }

    /// Quantiles are monotone in q: p50 ≤ p99 (and min ≤ p50,
    /// p99 ≤ max) for arbitrary non-empty samples.
    #[test]
    fn quantiles_are_monotone(
        latencies in prop::collection::vec(0.0f64..100.0, 1..80),
    ) {
        let report = report_with(latencies);
        let min = report.latency_quantile_secs(0.0);
        let p50 = report.p50_latency_secs();
        let p99 = report.p99_latency_secs();
        let max = report.latency_quantile_secs(1.0);
        prop_assert!(min <= p50, "min {min} > p50 {p50}");
        prop_assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        prop_assert!(p99 <= max, "p99 {p99} > max {max}");
    }

    /// Every quantile answered is an actual sample value (nearest rank
    /// never interpolates).
    #[test]
    fn quantile_is_a_sample_value(
        latencies in prop::collection::vec(0.0f64..100.0, 1..40),
        q in 0.0f64..=1.0,
    ) {
        let report = report_with(latencies.clone());
        let v = report.latency_quantile_secs(q);
        prop_assert!(latencies.iter().any(|&l| l.to_bits() == v.to_bits()));
    }
}

/// A zero-request report answers 0 for every quantile — no panic on
/// the empty sample — and so does a gateway whose replicas all served
/// nothing.
#[test]
fn empty_samples_answer_zero() {
    let empty = ServeReport::default();
    let gateway = GatewayReport {
        replicas: vec![ServeReport::default(), ServeReport::default()],
        ..Default::default()
    };
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(empty.latency_quantile_secs(q), 0.0);
        assert_eq!(gateway.latency_quantile_secs(q), 0.0);
    }
}
