//! Security audits: mechanised checks of the paper's Tables 2–3
//! restrictions plus empirical attack resistance.
//!
//! Every cross-party value flows through the typed transport, so a
//! party's *entire* view (beyond its own inputs) is its received
//! message list. The audits assert that Party A's view contains no
//! plaintext tensor at all during training — every message it receives
//! is a ciphertext, a key, a dimension, or a support set — which
//! mechanically enforces requirements ① ③ ⑤ ⑥ (no activations, no
//! derivatives, no weights, no gradients in the clear).

use bf_datagen::{generate, spec, vsplit};
use bf_ml::data::Labels;
use bf_ml::TrainConfig;
use blindfl::config::{FedConfig, GradMode};
use blindfl::models::FedSpec;
use blindfl::train::{train_federated, FedTrainConfig};

/// Run a short fully-encrypted training round and return
/// `(kinds A received, kinds B received)` — i.e. (B's sent, A's sent).
fn run_and_audit(fed_spec: FedSpec) -> (Vec<&'static str>, Vec<&'static str>) {
    let ds = spec("a9a").scaled(400, 2);
    let (train, test) = generate(&ds, 0x5EC);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let batch_seed = 42u64;
    // The audit wants the raw endpoints; run via the lower-level pair
    // runner so both stats handles survive.
    let cfg = FedConfig::paillier_test();
    let (a_stats, b_stats) = blindfl::session::run_pair(
        &cfg,
        0x5EC,
        {
            let spec = fed_spec.clone();
            let train_a = train_v.party_a.clone();
            let test_a = test_v.party_a.clone();
            move |mut sess| {
                let mut model =
                    blindfl::models::PartyAModel::init(&mut sess, &spec, &train_a).unwrap();
                for idx in bf_ml::data::BatchIter::new(train_a.rows(), 64, batch_seed) {
                    let batch = train_a.select(&idx);
                    model.forward(&mut sess, &batch, true).unwrap();
                    model.backward(&mut sess).unwrap();
                }
                let batch = test_a.select(&(0..32).collect::<Vec<_>>());
                model.forward(&mut sess, &batch, false).unwrap();
                sess.ep.stats().clone()
            }
        },
        {
            let spec = fed_spec.clone();
            let train_b = train_v.party_b.clone();
            let test_b = test_v.party_b.clone();
            move |mut sess| {
                let mut model =
                    blindfl::models::PartyBModel::init(&mut sess, &spec, &train_b).unwrap();
                for idx in bf_ml::data::BatchIter::new(train_b.rows(), 64, batch_seed) {
                    let batch = train_b.select(&idx);
                    model.train_batch(&mut sess, &batch).unwrap();
                }
                let batch = test_b.select(&(0..32).collect::<Vec<_>>());
                model.predict_batch(&mut sess, &batch).unwrap();
                sess.ep.stats().clone()
            }
        },
    );
    // What A received is what B sent, and vice versa.
    (b_stats.sent_kinds(), a_stats.sent_kinds())
}

#[test]
fn party_a_receives_no_plaintext_tensor_matmul() {
    let (a_view, b_view) = run_and_audit(FedSpec::Glm { out: 1 });
    assert!(
        a_view
            .iter()
            .all(|&k| matches!(k, "Ct" | "Key" | "U64" | "Support")),
        "Party A observed a plaintext message: {a_view:?}"
    );
    // B receives exactly one plaintext tensor per forward pass — the
    // aggregated share Z'_A (permitted by Table 2) — and nothing else
    // in the clear.
    let mats = b_view.iter().filter(|&&k| k == "Mat").count();
    let ct_or_allowed = b_view
        .iter()
        .all(|&k| matches!(k, "Ct" | "Key" | "U64" | "Support" | "Mat"));
    assert!(ct_or_allowed);
    assert!(mats > 0, "B must receive the Z'_A shares");
}

#[test]
fn party_a_receives_no_plaintext_tensor_embed() {
    let (a_view, _) = run_and_audit(FedSpec::Wdl {
        emb_dim: 4,
        deep_hidden: vec![8],
        out: 1,
    });
    assert!(
        a_view
            .iter()
            .all(|&k| matches!(k, "Ct" | "Key" | "U64" | "Support")),
        "Party A observed a plaintext message: {a_view:?}"
    );
}

#[test]
fn ablation_mode_does_leak_plaintext() {
    // Sanity check of the audit itself: the Figure 9 no-GradSS ablation
    // *does* hand Party A a plaintext gradient piece, and the audit
    // must see it.
    let ds = spec("a9a").scaled(400, 2);
    let (train, test) = generate(&ds, 1);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let cfg = FedConfig::paillier_test().with_grad_mode(GradMode::PlainGradToA { v_scale: 1.0 });
    let batch_seed = 42u64;
    let (a_stats, b_stats) = blindfl::session::run_pair(
        &cfg,
        2,
        {
            let train_a = train_v.party_a.clone();
            let test_a = test_v.party_a.clone();
            move |mut sess| {
                let spec = FedSpec::Glm { out: 1 };
                let mut model =
                    blindfl::models::PartyAModel::init(&mut sess, &spec, &train_a).unwrap();
                for idx in bf_ml::data::BatchIter::new(train_a.rows(), 64, batch_seed) {
                    let batch = train_a.select(&idx);
                    model.forward(&mut sess, &batch, true).unwrap();
                    model.backward(&mut sess).unwrap();
                }
                let _ = &test_a;
                sess.ep.stats().clone()
            }
        },
        {
            let train_b = train_v.party_b.clone();
            move |mut sess| {
                let spec = FedSpec::Glm { out: 1 };
                let mut model =
                    blindfl::models::PartyBModel::init(&mut sess, &spec, &train_b).unwrap();
                for idx in bf_ml::data::BatchIter::new(train_b.rows(), 64, batch_seed) {
                    let batch = train_b.select(&idx);
                    model.train_batch(&mut sess, &batch).unwrap();
                }
                sess.ep.stats().clone()
            }
        },
    );
    let a_view = b_stats.sent_kinds();
    assert!(
        a_view.contains(&"Mat"),
        "ablation should expose plaintext gradients to A"
    );
    let _ = a_stats;
}

#[test]
fn activation_attack_fails_against_blindfl() {
    // Figure 9 in miniature: X_A·U_A carries no label signal.
    let ds = spec("w8a").scaled(25, 1);
    let (train, test) = generate(&ds, 3);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let tc = FedTrainConfig {
        base: TrainConfig {
            epochs: 6,
            ..Default::default()
        },
        snapshot_u_a: true,
        ..Default::default()
    };
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        &FedConfig::plain(),
        &tc,
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        4,
    );
    let u = outcome.report.u_a_snapshots.last().unwrap();
    let Labels::Binary(y) = test_v.party_b.labels.as_ref().unwrap() else {
        panic!()
    };
    let auc = bf_baselines::activation_attack_auc(test_v.party_a.num.as_ref().unwrap(), u, y);
    assert!(
        (auc - 0.5).abs() < 0.1,
        "BlindFL share leaked labels: attack AUC {auc}"
    );

    // Contrast: the full federated model is genuinely predictive.
    assert!(
        outcome.report.test_metric > 0.7,
        "fed metric {}",
        outcome.report.test_metric
    );
}

#[test]
fn tables_2_and_3_are_internally_consistent() {
    use blindfl::privacy::*;
    // A's restrictions strictly include B's (A may see nothing at all).
    let a = matmul_forbidden_for_a();
    for o in matmul_forbidden_for_b() {
        if o != Observable::GradWeightsB {
            assert!(
                a.contains(&o),
                "{o:?} forbidden for B must be forbidden for A"
            );
        }
    }
    let ea = embed_forbidden_for_a();
    for o in embed_forbidden_for_b() {
        assert!(ea.contains(&o));
    }
}
