//! The serving equivalence contract (`docs/SERVING.md`): batched
//! served predictions are **bit-identical** to the in-process
//! prediction forward pass on the same rows — micro-batching and the
//! serve loop change *where* the forward runs, never its bytes.
//!
//! Matrix covered here:
//! * 2-party, Plain and Paillier backends, in-process transport
//! * 2-party over **TCP** (host thread ↔ guest thread on localhost)
//! * multi-guest (`M = 2`), Plain backend
//!
//! Every cell trains a model, round-trips both halves through the
//! [`blindfl::persist`] byte format (the serve path is always
//! train → persist → serve), then compares the serve stack against a
//! direct `predict_batch` run under identical session seeds and batch
//! partitions. Also pins the serve loop's traffic accounting: the
//! served run costs exactly the direct run's bytes plus one `Support`
//! frame per batch (the row-index upload) plus the shutdown sentinel.

use bf_datagen::{generate, spec, vsplit, vsplit_multi};
use bf_ml::data::Dataset;
use bf_mpc::{Endpoint, Msg};
use blindfl::config::FedConfig;
use blindfl::models::{FedSpec, MultiPartyBModel};
use blindfl::persist::{
    export_multi_party_b, export_party_a, export_party_b, import_multi_party_b, import_party_a,
    import_party_b,
};
use blindfl::serve::{self, serve_party_a, serve_party_b, serve_party_b_multi, ServeConfig};
use blindfl::session::{multi_party_seed, party_seed, run_pair, Role, Session};
use blindfl::train::{train_federated, train_federated_multi, FedTrainConfig};

const TRAIN_SEED: u64 = 41;
const SERVE_SEED: u64 = 42;

fn train_cfg(epochs: usize) -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs,
            batch_size: 8,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

/// Train a two-party LR and export both halves through the
/// persistence format.
fn train_and_export(cfg: &FedConfig, rows: usize) -> (Vec<u8>, Vec<u8>, Dataset, Dataset) {
    let ds = spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 7);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let outcome = train_federated(
        &FedSpec::Glm { out: 1 },
        cfg,
        &train_cfg(1),
        train_v.party_a,
        train_v.party_b,
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    (
        export_party_a(&outcome.party_a),
        export_party_b(&outcome.party_b),
        test_v.party_a,
        test_v.party_b,
    )
}

/// Sequential row chunks of size `bs` — the canonical serve-time batch
/// partition both comparison paths use.
fn chunks(n: usize, bs: usize) -> Vec<Vec<usize>> {
    (0..n)
        .collect::<Vec<_>>()
        .chunks(bs)
        .map(<[usize]>::to_vec)
        .collect()
}

/// The reference: load both halves and run the ordinary training-stack
/// prediction forward over the chunk partition. Returns per-row logit
/// bits and B's prediction-phase sent bytes (post-handshake delta, to
/// match the serve reports' serve-phase-only accounting).
fn direct_predictions(
    cfg: &FedConfig,
    bytes_a: &[u8],
    bytes_b: &[u8],
    store_a: &Dataset,
    store_b: &Dataset,
    bs: usize,
) -> (Vec<u64>, u64) {
    let n = store_a.rows();
    let store_a = store_a.clone();
    let bytes_a = bytes_a.to_vec();
    let (_, out) = run_pair(
        cfg,
        SERVE_SEED,
        move |mut sess| {
            let mut model = import_party_a(&bytes_a).unwrap();
            for idx in chunks(n, bs) {
                model
                    .predict_batch(&mut sess, &store_a.select(&idx))
                    .unwrap();
            }
        },
        move |mut sess| {
            let mut model = import_party_b(bytes_b).unwrap();
            let bytes_base = sess.ep.stats().bytes();
            let mut bits = Vec::new();
            for idx in chunks(n, bs) {
                let logits = model
                    .predict_batch(&mut sess, &store_b.select(&idx))
                    .unwrap();
                bits.extend(logits.data().iter().map(|v| v.to_bits()));
            }
            (bits, sess.ep.stats().bytes() - bytes_base)
        },
    );
    out
}

/// The serve stack over an arbitrary endpoint pair: guest serve loop
/// on one side, micro-batching server on the other, all `n` requests
/// pre-enqueued so the coalesced batches equal the chunk partition.
fn served_predictions(
    cfg: &FedConfig,
    ep_a: Endpoint,
    ep_b: Endpoint,
    bytes_a: &[u8],
    bytes_b: &[u8],
    store_a: &Dataset,
    store_b: &Dataset,
    bs: usize,
) -> (Vec<u64>, serve::ServeReport) {
    let n = store_a.rows();
    let store_a = store_a.clone();
    let bytes_a = bytes_a.to_vec();
    let cfg_a = cfg.clone();
    let guest = std::thread::Builder::new()
        .name("serve-guest".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess =
                Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SERVE_SEED)).unwrap();
            let mut model = import_party_a(&bytes_a).unwrap();
            serve_party_a(&mut sess, &mut model, &store_a).unwrap()
        })
        .unwrap();
    let mut sess =
        Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SERVE_SEED)).unwrap();
    let mut model = import_party_b(bytes_b).unwrap();
    let (client, queue) = serve::queue(n);
    let pending: Vec<_> = (0..n).map(|r| client.submit(r).unwrap()).collect();
    drop(client);
    let report = serve_party_b(
        &mut sess,
        &mut model,
        store_b,
        &ServeConfig { max_batch: bs },
        queue,
    )
    .unwrap();
    let guest_report = guest.join().unwrap();
    assert_eq!(guest_report.rows, n as u64);
    assert_eq!(guest_report.batches, report.batches);
    let mut bits = Vec::new();
    for (r, p) in pending.into_iter().enumerate() {
        let pred = p.wait().unwrap();
        // Request r rides chunk r/bs; the final chunk may be short.
        assert_eq!(pred.batch_rows, chunks(n, bs)[r / bs].len());
        bits.extend(pred.logits.iter().map(|v| v.to_bits()));
    }
    (bits, report)
}

/// One full 2-party cell: direct vs served over in-process channels.
fn check_two_party(cfg: &FedConfig, rows: usize, bs: usize) {
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(cfg, rows);
    let n = store_a.rows();
    let (direct_bits, direct_bytes) =
        direct_predictions(cfg, &bytes_a, &bytes_b, &store_a, &store_b, bs);
    let (ep_a, ep_b) = bf_mpc::channel_pair();
    let (served_bits, report) =
        served_predictions(cfg, ep_a, ep_b, &bytes_a, &bytes_b, &store_a, &store_b, bs);
    assert_eq!(served_bits, direct_bits, "served logits diverged");
    assert_eq!(report.requests, n as u64);
    let expected_sizes: Vec<usize> = chunks(n, bs).iter().map(Vec::len).collect();
    assert_eq!(report.batches, expected_sizes.len() as u64);
    assert_eq!(report.batch_sizes, expected_sizes);
    // Traffic contract: serving adds exactly one Support frame per
    // batch plus the shutdown sentinel on top of the direct forwards.
    let support_bytes: u64 = report
        .batch_sizes
        .iter()
        .map(|&b| Msg::Support(vec![0; b]).wire_size() as u64)
        .sum();
    let shutdown = Msg::U64(0).wire_size() as u64;
    assert_eq!(
        report.bytes_sent,
        direct_bytes + support_bytes + shutdown,
        "serve-loop traffic accounting drifted"
    );
}

#[test]
fn served_equals_direct_forward_two_party_plain() {
    check_two_party(&FedConfig::plain(), 48, 8);
}

#[test]
fn served_equals_direct_forward_two_party_paillier() {
    // Real ciphertexts: the loaded caches decrypt under the
    // seed-regenerated session keys, and the served pass still
    // reproduces the direct pass bit for bit.
    check_two_party(&FedConfig::paillier_test(), 24, 8);
}

#[test]
fn served_equals_direct_forward_over_tcp() {
    // Same contract with the serve session on real sockets: the wire
    // changes, the bits do not.
    let cfg = FedConfig::plain();
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(&cfg, 48);
    let bs = 8;
    let (direct_bits, _) = direct_predictions(&cfg, &bytes_a, &bytes_b, &store_a, &store_b, bs);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let connect = std::thread::spawn(move || Endpoint::tcp_connect(addr).unwrap());
    let ep_b = Endpoint::tcp_accept(&listener).unwrap();
    let ep_a = connect.join().unwrap();
    let (served_bits, _) =
        served_predictions(&cfg, ep_a, ep_b, &bytes_a, &bytes_b, &store_a, &store_b, bs);
    assert_eq!(served_bits, direct_bits);
}

#[test]
fn client_disconnect_mid_request_leaves_the_serve_loop_running() {
    // Fault-tolerance regression: a client that submits a request and
    // then disconnects (drops its `PendingPrediction`) before the
    // answer arrives must not stall or kill the serve loop — the
    // abandoned reply lands on a closed channel, the batch still
    // serves, and every still-connected client gets its exact answer.
    let cfg = FedConfig::plain();
    let (bytes_a, bytes_b, store_a, store_b) = train_and_export(&cfg, 48);
    let bs = 8;
    let n = store_a.rows();
    let (direct_bits, _) = direct_predictions(&cfg, &bytes_a, &bytes_b, &store_a, &store_b, bs);

    let (ep_a, ep_b) = bf_mpc::channel_pair();
    let cfg_a = cfg.clone();
    let store_a2 = store_a.clone();
    let guest = std::thread::Builder::new()
        .name("serve-guest".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let mut sess =
                Session::handshake(ep_a, cfg_a, Role::A, party_seed(Role::A, SERVE_SEED)).unwrap();
            let mut model = import_party_a(&bytes_a).unwrap();
            serve_party_a(&mut sess, &mut model, &store_a2).unwrap()
        })
        .unwrap();
    let mut sess =
        Session::handshake(ep_b, cfg.clone(), Role::B, party_seed(Role::B, SERVE_SEED)).unwrap();
    let mut model = import_party_b(&bytes_b).unwrap();
    let (client, queue) = serve::queue(n);
    let pending: Vec<_> = (0..n).map(|r| client.submit(r).unwrap()).collect();
    drop(client);
    // Every odd-row client hangs up while its request is in flight —
    // disconnects land in every coalesced batch, not just one.
    let survivors: Vec<_> = pending
        .into_iter()
        .enumerate()
        .filter(|(r, _)| r % 2 == 0)
        .collect();
    let report = serve_party_b(
        &mut sess,
        &mut model,
        &store_b,
        &ServeConfig { max_batch: bs },
        queue,
    )
    .expect("abandoned requests must not kill the serve loop");
    // The loop served the full queue, abandoned requests included, and
    // the guest saw every row.
    assert_eq!(report.requests, n as u64);
    let guest_report = guest.join().unwrap();
    assert_eq!(guest_report.rows, n as u64);
    // Surviving clients still get bit-exact answers.
    assert!(!survivors.is_empty());
    for (r, p) in survivors {
        let pred = p.wait().unwrap();
        let bits: Vec<u64> = pred.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, vec![direct_bits[r]], "row {r}");
    }
}

#[test]
fn served_equals_direct_forward_multi_guest() {
    // M = 2 guests: the host's serve loop broadcasts each coalesced
    // batch's rows to every link; every guest runs the unmodified
    // serve_party_a. Bit-parity against the direct multi-guest
    // prediction pass from the same persisted state.
    let m = 2usize;
    let bs = 8;
    let cfg = FedConfig::plain();
    let ds = spec("a9a").scaled(48, 1);
    let (train, test) = generate(&ds, 7);
    let train_v = vsplit_multi(&train, m);
    let test_v = vsplit_multi(&test, m);
    let test_guests = test_v.guests.clone();
    let outcome = train_federated_multi(
        &FedSpec::Glm { out: 1 },
        &cfg,
        &train_cfg(1),
        train_v.guests,
        train_v.party_b,
        test_guests.clone(),
        test_v.party_b.clone(),
        TRAIN_SEED,
    );
    let guest_bytes: Vec<Vec<u8>> = outcome
        .guests
        .iter()
        .map(|g| export_party_a(&g.model))
        .collect();
    let host_bytes = export_multi_party_b(&outcome.party_b.model);
    let n = test_v.party_b.rows();

    // Direct multi-guest prediction pass from the persisted state.
    let run_host = |serve_mode: bool| -> Vec<u64> {
        let mut host_eps = Vec::new();
        let mut handles = Vec::new();
        for (i, store) in test_guests.iter().cloned().enumerate() {
            let (ep_a, ep_b) = bf_mpc::channel_pair();
            host_eps.push(ep_b);
            let cfg_a = cfg.clone();
            let bytes = guest_bytes[i].clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-guest-{i}"))
                    .stack_size(16 << 20)
                    .spawn(move || {
                        let mut sess = Session::handshake(
                            ep_a,
                            cfg_a,
                            Role::A,
                            multi_party_seed(Role::A, i, SERVE_SEED),
                        )
                        .unwrap();
                        let mut model = import_party_a(&bytes).unwrap();
                        if serve_mode {
                            serve_party_a(&mut sess, &mut model, &store).unwrap();
                        } else {
                            for idx in chunks(store.rows(), bs) {
                                model.predict_batch(&mut sess, &store.select(&idx)).unwrap();
                            }
                        }
                    })
                    .unwrap(),
            );
        }
        let mut sessions: Vec<Session> = host_eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                Session::handshake(
                    ep,
                    cfg.clone(),
                    Role::B,
                    multi_party_seed(Role::B, i, SERVE_SEED),
                )
                .unwrap()
            })
            .collect();
        let mut model: MultiPartyBModel = import_multi_party_b(&host_bytes).unwrap();
        let bits = if serve_mode {
            let (client, queue) = serve::queue(n);
            let pending: Vec<_> = (0..n).map(|r| client.submit(r).unwrap()).collect();
            drop(client);
            let report = serve_party_b_multi(
                &mut sessions,
                &mut model,
                &test_v.party_b,
                &ServeConfig { max_batch: bs },
                queue,
            )
            .unwrap();
            assert_eq!(report.requests, n as u64);
            pending
                .into_iter()
                .flat_map(|p| p.wait().unwrap().logits)
                .map(|v| v.to_bits())
                .collect()
        } else {
            let mut bits = Vec::new();
            for idx in chunks(n, bs) {
                let logits = model
                    .predict_batch(&mut sessions, &test_v.party_b.select(&idx))
                    .unwrap();
                bits.extend(logits.data().iter().map(|v| v.to_bits()));
            }
            bits
        };
        for h in handles {
            h.join().unwrap();
        }
        bits
    };

    let direct = run_host(false);
    let served = run_host(true);
    assert_eq!(served, direct);

    // Consistency with the two-party stack: a PartyAModel that served
    // a multi link is still the unmodified two-party guest half.
    assert_eq!(direct.len(), n);
}
