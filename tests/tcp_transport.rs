//! End-to-end federated runs across the **TCP** transport.
//!
//! The acceptance bar for the wire protocol: a federated-LR run whose
//! parties talk through real sockets (frames encoded/decoded per
//! `docs/WIRE_PROTOCOL.md`) must produce the *same* loss curve as the
//! in-process channel transport (±1e-6; in practice bit-identical,
//! since both parties derive every random draw from `(role, seed)`),
//! and `TrafficStats::bytes()` must match the in-process byte count
//! exactly — the paper's Table 7/8 traffic numbers are
//! transport-independent. Verified on both the Plain and the Paillier
//! backend.

use std::net::TcpListener;

use bf_datagen::{generate, spec as dataset_spec, vsplit};
use bf_mpc::Endpoint;
use blindfl::config::FedConfig;
use blindfl::models::FedSpec;
use blindfl::session::{party_seed, Role, Session};
use blindfl::train::{run_party_a, run_party_b, train_federated, FedTrainConfig, PartyBRun};

const SEED: u64 = 23;

fn train_cfg() -> FedTrainConfig {
    FedTrainConfig {
        base: bf_ml::TrainConfig {
            epochs: 1,
            batch_size: 32,
            ..Default::default()
        },
        snapshot_u_a: false,
        ..Default::default()
    }
}

/// Run the full federated-LR flow over localhost TCP (Party A on a
/// thread behind a real socket); returns Party B's run plus Party A's
/// sent-byte count.
fn run_over_tcp(cfg: &FedConfig, rows: usize) -> (PartyBRun, u64) {
    let ds = dataset_spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 5);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    let fed = FedSpec::Glm { out: 1 };
    let tc = train_cfg();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let cfg_a = cfg.clone();
    let fed_a = fed.clone();
    let tc_a = tc.clone();
    let (train_a, test_a) = (train_v.party_a.clone(), test_v.party_a.clone());
    let guest = std::thread::Builder::new()
        .name("tcp-party-a".into())
        .stack_size(16 << 20)
        .spawn(move || {
            let ep = Endpoint::tcp_connect(addr).expect("connect");
            let mut sess = Session::handshake(ep, cfg_a, Role::A, party_seed(Role::A, SEED))
                .expect("guest handshake");
            let run = run_party_a(&mut sess, &fed_a, &tc_a, &train_a, &test_a).expect("party A");
            run.bytes_sent
        })
        .expect("spawn guest");

    let ep = Endpoint::tcp_accept(&listener).expect("accept");
    let mut sess =
        Session::handshake(ep, cfg.clone(), Role::B, party_seed(Role::B, SEED)).expect("host");
    let run_b =
        run_party_b(&mut sess, &fed, &tc, &train_v.party_b, &test_v.party_b).expect("party B");
    let bytes_a = guest.join().expect("guest thread");
    (run_b, bytes_a)
}

/// The in-process reference with identical data, seed and config.
fn run_in_process(cfg: &FedConfig, rows: usize) -> blindfl::train::FedOutcome {
    let ds = dataset_spec("a9a").scaled(rows, 1);
    let (train, test) = generate(&ds, 5);
    let train_v = vsplit(&train);
    let test_v = vsplit(&test);
    train_federated(
        &FedSpec::Glm { out: 1 },
        cfg,
        &train_cfg(),
        train_v.party_a.clone(),
        train_v.party_b.clone(),
        test_v.party_a.clone(),
        test_v.party_b.clone(),
        SEED,
    )
}

fn assert_tcp_matches_in_process(cfg: FedConfig, rows: usize) {
    let reference = run_in_process(&cfg, rows);
    let (tcp_b, tcp_bytes_a) = run_over_tcp(&cfg, rows);

    // Loss curves match (±1e-6 per the acceptance criterion; the runs
    // are deterministic so they should in fact be identical).
    assert_eq!(tcp_b.losses.len(), reference.report.losses.len());
    for (tcp, inproc) in tcp_b.losses.iter().zip(&reference.report.losses) {
        assert!(
            (tcp - inproc).abs() <= 1e-6,
            "loss diverged: tcp {tcp} vs in-process {inproc}"
        );
    }
    let (lt, lr) = (
        *tcp_b.losses.last().unwrap(),
        *reference.report.losses.last().unwrap(),
    );
    assert!((lt - lr).abs() <= 1e-6, "final loss {lt} vs {lr}");
    assert!(
        (tcp_b.test_metric - reference.report.test_metric).abs() <= 1e-6,
        "metric {} vs {}",
        tcp_b.test_metric,
        reference.report.test_metric
    );

    // One-epoch traffic parity, exact, in both directions.
    assert_eq!(
        tcp_b.bytes_sent, reference.report.bytes_b_to_a,
        "B→A bytes must match the in-process transport exactly"
    );
    assert_eq!(
        tcp_bytes_a, reference.report.bytes_a_to_b,
        "A→B bytes must match the in-process transport exactly"
    );
    assert!(tcp_bytes_a > 0 && tcp_b.bytes_sent > 0);
}

#[test]
fn plain_backend_federated_lr_over_tcp_matches_in_process() {
    assert_tcp_matches_in_process(FedConfig::plain(), 80);
}

#[test]
fn paillier_backend_federated_lr_over_tcp_matches_in_process() {
    assert_tcp_matches_in_process(FedConfig::paillier_test(), 48);
}

#[test]
fn malformed_peer_surfaces_error_not_panic() {
    // A party loop facing a peer that speaks garbage must get a typed
    // error (and can drop the connection), never a crash.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let vandal = std::thread::spawn(move || {
        use std::io::Write;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"this is not a blindfl frame").unwrap();
    });
    let ep = Endpoint::tcp_accept(&listener).unwrap();
    let err = Session::handshake(ep, FedConfig::plain(), Role::B, party_seed(Role::B, 1))
        .err()
        .expect("handshake against a garbage peer must fail");
    let msg = format!("{err}");
    assert!(msg.contains("wire decode error"), "unexpected error: {msg}");
    vandal.join().unwrap();
}
