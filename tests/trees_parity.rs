//! Federated gradient-boosting equivalence suite (SecureBoost-style
//! trees): the federated forest must be **bit-identical** to a
//! collocated single-process XGBoost twin trained on the same rows.
//!
//! Why bit-exact and not a tolerance: every histogram sum both sides
//! compute is an exact `i64` on the `2^-frac_bits` fixed-point grid —
//! the Paillier codec rounds each gradient onto the grid at
//! encryption, the Plain backend quantizes identically, a 0/1 bucket
//! indicator is exact under the homomorphic contraction, and the host
//! re-quantizes decrypted aggregates with the same rounding. Identical
//! integer histograms force identical `f64` gains, argmaxes and leaf
//! weights, hence identical trees, losses and served margins.
//!
//! The contract is proved in four links:
//!
//! 1. **Forest identity** — for 2-party (`M = 1`) and `M = 2`, on
//!    Plain and on Paillier-256/Packed, the host's trees equal the
//!    twin's trees node for node (global feature ids line up because
//!    the global order is guest links first, host last — exactly the
//!    twin's column order), and the loss curves match bit for bit.
//! 2. **Predicate custody** — replaying the host's trees in node
//!    order reproduces each guest's recorded `(feature, threshold)`
//!    list exactly, and each guest threshold equals the twin's bucket
//!    edge for that (global feature, bucket).
//! 3. **Transports cannot matter** — in-process channel and TCP runs
//!    produce the same forest with byte-identical per-link
//!    `TrafficStats`, both directions.
//! 4. **Persist → serve** — both model halves round-trip through BFMD
//!    byte-exactly, and the reloaded forest serves every row through
//!    the micro-batching queue bit-identical to `twin.predict`.

use std::net::TcpListener;

use bf_datagen::{generate_tree, vsplit_multi};
use bf_ml::data::Dataset;
use bf_ml::gbdt::{CollocatedGbdt, GbdtParams, Node};
use bf_mpc::Endpoint;
use blindfl::config::{Backend, FedConfig};
use blindfl::multiparty::{collect_guests, send_hello};
use blindfl::serve::{queue, ServeConfig};
use blindfl::session::{multi_party_seed, Role, Session};
use blindfl::trees::{
    gbdt_guest_over, run_gbdt_host, serve_gbdt_guest, serve_gbdt_host, train_gbdt, GbdtFedOutcome,
};
use blindfl::{export_gbdt_guest, export_gbdt_host, import_gbdt_guest, import_gbdt_host};

const SEED: u64 = 41;
const DATA_SEED: u64 = 13;
const ROWS: usize = 64;
const FEATURES: usize = 6;

fn data() -> Dataset {
    generate_tree(ROWS, FEATURES, DATA_SEED)
}

/// Boosting hyper-parameters for one backend. `frac_bits` must equal
/// the session codec's so the host's re-quantization grid is the grid
/// the ciphertexts were rounded onto.
fn params_for(cfg: &FedConfig) -> GbdtParams {
    GbdtParams {
        trees: 3,
        max_depth: 3,
        max_bins: 8,
        frac_bits: cfg.frac_bits,
        ..GbdtParams::default()
    }
}

/// The collocated twin: same rows, same hyper-parameters, and — by
/// construction of `vsplit_multi` — the same global feature order
/// (guest slices concatenate to the first half, host half follows).
fn twin(cfg: &FedConfig) -> (CollocatedGbdt, Vec<f64>) {
    CollocatedGbdt::train(&data(), &params_for(cfg))
}

/// One federated training run, `M` guests, channel or TCP transport.
fn run_fed(cfg: &FedConfig, m: usize, tcp: bool) -> GbdtFedOutcome {
    let split = vsplit_multi(&data(), m);
    let params = params_for(cfg);
    if !tcp {
        return train_gbdt(cfg, &params, split.guests, &split.party_b, SEED);
    }
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().unwrap();
    let mut handles = Vec::new();
    for (i, store) in split.guests.into_iter().enumerate() {
        let cfg_a = cfg.clone();
        let params_a = params.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("trees-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    let ep = Endpoint::tcp_connect(addr).expect("guest connect");
                    gbdt_guest_over(ep, cfg_a, &params_a, i, m, &store, SEED).expect("guest run")
                })
                .expect("spawn guest"),
        );
    }
    let accepted: Vec<Endpoint> = (0..m)
        .map(|_| Endpoint::tcp_accept(&listener).expect("accept"))
        .collect();
    let ordered = collect_guests(accepted, m).expect("fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(ep, cfg.clone(), Role::B, multi_party_seed(Role::B, i, SEED))
                .expect("host handshake")
        })
        .collect();
    let host = run_gbdt_host(&mut sessions, &split.party_b, &params).expect("host run");
    let guests = handles
        .into_iter()
        .map(|h| h.join().expect("guest thread"))
        .collect();
    GbdtFedOutcome { host, guests }
}

/// Links 1 + 2 for one backend and guest count: forest, losses and
/// guest predicate custody all match the twin bit for bit.
fn assert_forest_identity(cfg: &FedConfig, m: usize) {
    let fed = run_fed(cfg, m, false);
    let (tw, tw_losses) = twin(cfg);

    // Bit-exact loss curve — the strongest possible statement that
    // both sides walked the same boosting trajectory.
    assert_eq!(fed.host.losses, tw_losses, "M={m}: loss curves diverged");
    assert_eq!(
        fed.host.model.trees, tw.trees,
        "M={m}: forest topology diverged from the twin"
    );
    assert_eq!(fed.host.model.base_score, tw.params.base_score);

    // The host's threshold knowledge is exactly its own feature tail.
    let guest_width: usize = fed.host.model.guest_widths.iter().sum();
    assert_eq!(fed.host.model.host_edges[..], tw.edges[guest_width..]);

    // Predicate custody: walking the host trees in node order
    // reproduces each guest's record list — feature by feature,
    // threshold by threshold (the threshold being the twin's bucket
    // edge the host itself never saw).
    let mut counters = vec![0usize; m];
    for tree in &fed.host.model.trees {
        for node in &tree.nodes {
            let Node::Split {
                feature, bucket, ..
            } = node
            else {
                continue;
            };
            let mut local = *feature as usize;
            let mut link = None;
            for (l, &w) in fed.host.model.guest_widths.iter().enumerate() {
                if local < w {
                    link = Some(l);
                    break;
                }
                local -= w;
            }
            if let Some(l) = link {
                let rec = &fed.guests[l].model.records[counters[l]];
                counters[l] += 1;
                assert_eq!(rec.feature as usize, local, "M={m}: record feature");
                assert_eq!(
                    rec.threshold.to_bits(),
                    tw.edges[*feature as usize][*bucket as usize].to_bits(),
                    "M={m}: guest threshold is not the twin's bucket edge"
                );
            }
        }
    }
    for (l, g) in fed.guests.iter().enumerate() {
        assert_eq!(
            g.model.records.len(),
            counters[l],
            "M={m}: guest {l} recorded extra predicates"
        );
    }
    assert_eq!(counters, fed.host.model.records_per_link());
    // The planted XOR lives in columns 0/1 — guest-owned under every
    // split — so a forest with no guest splits would be vacuous.
    assert!(
        counters.iter().sum::<usize>() > 0,
        "M={m}: no guest-owned splits; the parity check proved nothing"
    );
    // Boosting actually learned: losses strictly improve overall.
    assert!(fed.host.losses.last().unwrap() < fed.host.losses.first().unwrap());
}

#[test]
fn plain_forest_matches_collocated_twin() {
    for m in [1usize, 2] {
        assert_forest_identity(&FedConfig::plain(), m);
    }
}

#[test]
fn paillier_packed_forest_matches_collocated_twin() {
    let cfg = FedConfig::paillier_test();
    // Guard: the cell really runs ciphertexts, not a degraded Plain.
    assert!(matches!(cfg.backend, Backend::Paillier { key_bits: 256 }));
    for m in [1usize, 2] {
        assert_forest_identity(&cfg, m);
    }
}

/// Link 3 for one backend: channel and TCP runs produce the same
/// forest with byte-identical per-link traffic, both directions.
fn assert_transport_parity(cfg: &FedConfig) {
    let m = 2;
    let inproc = run_fed(cfg, m, false);
    let tcp = run_fed(cfg, m, true);
    assert_eq!(inproc.host.losses, tcp.host.losses, "loss curves diverged");
    assert_eq!(inproc.host.model, tcp.host.model, "host models diverged");
    for (l, (a, b)) in inproc.guests.iter().zip(&tcp.guests).enumerate() {
        assert_eq!(a.model, b.model, "guest {l} models diverged");
        assert_eq!(
            a.bytes_sent, b.bytes_sent,
            "guest {l} A→B bytes diverged across transports"
        );
        assert!(a.bytes_sent > 0);
    }
    assert_eq!(
        inproc.host.bytes_sent_per_link, tcp.host.bytes_sent_per_link,
        "per-link B→A bytes diverged across transports"
    );
    assert!(inproc.host.bytes_sent_per_link.iter().all(|&b| b > 0));
}

#[test]
fn plain_transport_parity_per_link() {
    assert_transport_parity(&FedConfig::plain());
}

#[test]
fn paillier_transport_parity_per_link() {
    assert_transport_parity(&FedConfig::paillier_test());
}

/// Link 4 for one backend: export both halves, reimport, and serve
/// every store row through the micro-batching queue — the served
/// margins equal `twin.predict` bit for bit.
fn assert_persist_and_serve(cfg: &FedConfig, m: usize) {
    let ds = data();
    let split = vsplit_multi(&ds, m);
    let fed = train_gbdt(
        cfg,
        &params_for(cfg),
        split.guests.clone(),
        &split.party_b,
        SEED,
    );
    let (tw, _) = twin(cfg);

    // BFMD round trip, byte-exact both halves.
    let host_blob = export_gbdt_host(&fed.host.model);
    let host_model = import_gbdt_host(&host_blob).expect("host import");
    assert_eq!(host_model, fed.host.model);
    assert_eq!(export_gbdt_host(&host_model), host_blob);
    let guest_models: Vec<_> = fed
        .guests
        .iter()
        .map(|g| {
            let blob = export_gbdt_guest(&g.model);
            let back = import_gbdt_guest(&blob).expect("guest import");
            assert_eq!(back, g.model);
            assert_eq!(export_gbdt_guest(&back), blob);
            back
        })
        .collect();

    // Fresh serving sessions (different seed: a deployment reloads
    // models into new processes; the forest walk must not depend on
    // any training-session state).
    let serve_seed = SEED + 1;
    let mut host_eps = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for (i, (store, model)) in split.guests.into_iter().zip(guest_models).enumerate() {
        let (ep_a, ep_b) = bf_mpc::channel_pair();
        host_eps.push(ep_b);
        let cfg_a = cfg.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("serve-guest-{i}"))
                .stack_size(16 << 20)
                .spawn(move || {
                    send_hello(&ep_a, i, m).expect("hello");
                    let mut sess = Session::handshake(
                        ep_a,
                        cfg_a,
                        Role::A,
                        multi_party_seed(Role::A, i, serve_seed),
                    )
                    .expect("guest handshake");
                    serve_gbdt_guest(&mut sess, &model, &store).expect("guest serve")
                })
                .expect("spawn guest"),
        );
    }
    let ordered = collect_guests(host_eps, m).expect("fan-in");
    let mut sessions: Vec<Session> = ordered
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            Session::handshake(
                ep,
                cfg.clone(),
                Role::B,
                multi_party_seed(Role::B, i, serve_seed),
            )
            .expect("host handshake")
        })
        .collect();

    let twin_margins = tw.predict(ds.num.as_ref().unwrap());
    let (client, rq) = queue(8);
    let client_thread = std::thread::spawn(move || {
        (0..ROWS)
            .map(|r| client.predict(r).expect("prediction").logits[0])
            .collect::<Vec<f64>>()
    });
    let report = serve_gbdt_host(
        &mut sessions,
        &host_model,
        &split.party_b,
        &ServeConfig::default(),
        rq,
    )
    .expect("host serve");
    let served = client_thread.join().expect("client thread");
    let guest_reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("guest serve thread"))
        .collect();

    assert_eq!(report.requests, ROWS as u64);
    assert_eq!(report.rejected, 0);
    assert!(report.bytes_sent > 0);
    for gr in &guest_reports {
        assert_eq!(gr.rows, ROWS as u64);
        assert!(gr.bytes_sent > 0);
    }
    assert_eq!(served.len(), twin_margins.len());
    for (r, (&s, &t)) in served.iter().zip(&twin_margins).enumerate() {
        assert_eq!(
            s.to_bits(),
            t.to_bits(),
            "row {r}: served margin {s} != twin margin {t}"
        );
    }
}

#[test]
fn plain_persisted_forest_serves_twin_margins() {
    assert_persist_and_serve(&FedConfig::plain(), 2);
}

#[test]
fn paillier_persisted_forest_serves_twin_margins() {
    assert_persist_and_serve(&FedConfig::paillier_test(), 2);
}
