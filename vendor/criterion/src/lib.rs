//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the benchmark-group API surface the `bf-bench` criterion
//! benches use (`benchmark_group`, `measurement_time`, `warm_up_time`,
//! `sample_size`, `bench_function`, `iter`, `criterion_group!`,
//! `criterion_main!`) with a simple wall-clock sampler: warm up for the
//! configured time, then collect per-iteration samples until the
//! measurement budget is spent, and print min / mean / median / p95 per
//! benchmark.
//!
//! Statistical niceties of real criterion (outlier classification,
//! regression against saved baselines, HTML reports) are out of scope;
//! the numbers printed here are directly comparable across runs on the
//! same machine, which is what the Table 5 / Figure 9 reproductions
//! need.
//!
//! Passing `--test` (as `cargo test --benches` does for
//! `harness = false` targets) or setting `CRITERION_SMOKE=1` runs every
//! benchmark body exactly once — a compile-and-smoke mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to every benchmark function.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_SMOKE")
                .map(|v| v == "1")
                .unwrap_or(false);
        Criterion { smoke }
    }
}

impl Criterion {
    /// Consume CLI arguments (kept for API compatibility; filtering by
    /// benchmark name is not implemented).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement: Duration::from_secs(5),
            warm_up: Duration::from_secs(3),
            sample_size: 100,
            smoke: self.smoke,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    /// Print a trailing summary (no-op; per-bench lines are printed as
    /// they complete).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    measurement: Duration,
    warm_up: Duration,
    sample_size: usize,
    smoke: bool,
}

impl BenchmarkGroup {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the per-benchmark warm-up time.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: if self.smoke {
                Duration::ZERO
            } else {
                self.warm_up
            },
            measurement: if self.smoke {
                Duration::ZERO
            } else {
                self.measurement
            },
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        report(&label, &mut b.samples, self.smoke);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timer handle: call [`iter`](Bencher::iter) with the body to measure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: run without recording.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            black_box(body());
        }
        // Measurement: one sample per iteration until either the time
        // budget or a generous sample cap is reached. Always record at
        // least one sample so smoke mode still exercises the body.
        let cap = self.sample_size.max(10) * 100;
        let start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(body());
            self.samples.push(t.elapsed());
            if start.elapsed() >= self.measurement || self.samples.len() >= cap {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &mut [Duration], smoke: bool) {
    if samples.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    if smoke {
        println!("{label:<44} smoke ok ({:>10})", fmt_dur(samples[0]));
        return;
    }
    samples.sort_unstable();
    let n = samples.len();
    let total: Duration = samples.iter().sum();
    let mean = total / n as u32;
    let median = samples[n / 2];
    let p95 = samples[(n * 95 / 100).min(n - 1)];
    println!(
        "{label:<44} {:>6} iters   min {:>10}   mean {:>10}   median {:>10}   p95 {:>10}",
        n,
        fmt_dur(samples[0]),
        fmt_dur(mean),
        fmt_dur(median),
        fmt_dur(p95),
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, as in real
/// criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 1);
    }

    #[test]
    fn group_chain_configures() {
        let mut c = Criterion { smoke: true };
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(10);
        g.bench_function("unit", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_dur(Duration::from_micros(1500)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).contains("s"));
    }
}
