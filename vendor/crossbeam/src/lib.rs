//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses, backed by `std`:
//!
//! * [`scope`] — scoped threads with the crossbeam 0.8 signature
//!   (spawn closures receive a `&Scope` argument, `scope` returns a
//!   `Result` whose `Err` carries a child panic payload), implemented
//!   on `std::thread::scope`,
//! * [`channel`] — `unbounded` MPSC channels with crossbeam's
//!   `Sender`/`Receiver` API, implemented on `std::sync::mpsc`.

use std::any::Any;

/// Scoped-thread support.
pub mod thread {
    use super::Any;

    /// Result of a [`scope`] call: `Err` holds the panic
    /// payload if any spawned thread panicked.
    pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning scoped threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this block. As in crossbeam, the
        /// closure receives the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; all threads spawned through the
    /// handle are joined before this returns. A panic in any spawned
    /// thread surfaces as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resumes child panics after joining; catch
        // them to reproduce crossbeam's Result-returning contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

/// MPSC channels with the crossbeam API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending half has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; never blocks.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` if the channel is empty or
        /// disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_propagates_child_panic_as_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("child failure"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = crate::channel::unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
