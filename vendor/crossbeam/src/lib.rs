//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses, backed by `std`:
//!
//! * [`scope`] — scoped threads with the crossbeam 0.8 signature
//!   (spawn closures receive a `&Scope` argument, `scope` returns a
//!   `Result` whose `Err` carries a child panic payload), implemented
//!   on `std::thread::scope`,
//! * [`channel`] — `unbounded` and `bounded` MPSC channels with
//!   crossbeam's `Sender`/`Receiver` API, implemented on
//!   `std::sync::mpsc`.

use std::any::Any;

/// Scoped-thread support.
pub mod thread {
    use super::Any;

    /// Result of a [`scope`] call: `Err` holds the panic
    /// payload if any spawned thread panicked.
    pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning scoped threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this block. As in crossbeam, the
        /// closure receives the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; all threads spawned through the
    /// handle are joined before this returns. A panic in any spawned
    /// thread surfaces as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resumes child panics after joining; catch
        // them to reproduce crossbeam's Result-returning contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

/// MPSC channels with the crossbeam API shape.
pub mod channel {
    use std::sync::mpsc;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel (unbounded or bounded).
    pub struct Sender<T>(Tx<T>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending half has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                Tx::Unbounded(tx) => Sender(Tx::Unbounded(tx.clone())),
                Tx::Bounded(tx) => Sender(Tx::Bounded(tx.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message. Never blocks on an unbounded channel; on a
        /// bounded channel, blocks while the buffer is full
        /// (backpressure).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` if the channel is empty or
        /// disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Create a bounded channel with the given buffer capacity; sends
    /// block while `cap` messages are in flight.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_propagates_child_panic_as_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("child failure"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let (tx, rx) = crate::channel::bounded(1);
        tx.send(1).unwrap();
        // Second send must block until the consumer drains a slot. The
        // flag flips only after the send completes: seeing it unset
        // after a grace period proves the send blocked (a slow
        // scheduler can only make this check vacuous, never flaky),
        // and seeing it set after the recv proves it unblocked.
        let completed = Arc::new(AtomicBool::new(false));
        let completed_t = Arc::clone(&completed);
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap();
            completed_t.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !completed.load(Ordering::SeqCst),
            "send into a full bounded(1) channel did not block"
        );
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert!(completed.load(Ordering::SeqCst));
        assert_eq!(rx.recv().unwrap(), 2);
        // Sender dropped with the thread: recv surfaces an error.
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = crate::channel::unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
