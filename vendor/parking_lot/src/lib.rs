//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and a lock held by a panicking
//! thread is recovered rather than poisoned (matching parking_lot's
//! observable behaviour for the usage in this workspace).

use std::fmt;

/// Guard for [`Mutex`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard for [`RwLock`] read access.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard for [`RwLock`] write access.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_recovers_after_holder_panics() {
        let m = Arc::new(Mutex::new(vec![1]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies with the lock");
        })
        .join();
        // parking_lot semantics: no poisoning, the data stays usable.
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
