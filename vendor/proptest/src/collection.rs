//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Size specifications accepted by [`vec`](fn@vec): an exact length, a
/// half-open range, or an inclusive range.
pub trait IntoSizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn size_bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn size_bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn size_bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn size_bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a size range.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of values from `element`, with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.size_bounds();
    VecStrategy { element, min, max }
}
