//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property suites
//! use: the [`Strategy`] trait with `prop_map`, range / [`Just`] /
//! [`any`] / weighted-union / collection strategies, the `proptest!`,
//! `prop_assert*`, `prop_assume!` and `prop_oneof!` macros, and a
//! deterministic [`ProptestConfig`]-driven runner.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimised;
//! * **deterministic seeding** — each test derives its RNG seed from
//!   the test name (override with `PROPTEST_SEED`), so failures
//!   reproduce without a persistence file;
//! * **`PROPTEST_CASES` caps, never raises** — the env var bounds the
//!   per-test case count from above so CI can shrink long suites
//!   without editing explicit `with_cases` settings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// The `prop::` namespace (`prop::collection::vec(...)` in test files).
pub mod prop {
    pub use crate::collection;
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }

    /// Case count after applying the `PROPTEST_CASES` cap. Always at
    /// least 1 so a cap of 0 cannot silently skip a suite.
    pub fn effective_cases(&self) -> u32 {
        let n = match env_cases() {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        };
        n.max(1)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// A `prop_assert*` failed; the whole test fails.
    Fail(String),
}

/// Result type the generated case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of `Self::Value`.
///
/// This mirrors proptest's `Strategy` minus shrinking: `generate`
/// replaces `new_tree(..).current()`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe shim behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*}
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Weighted union of strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must sum > 0.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Runner internals used by the generated test bodies.
pub mod runner {
    use super::*;

    fn seed_for(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.trim().parse() {
                return v;
            }
        }
        // FNV-1a over the test name: stable, collision-irrelevant.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Drive one property test: repeat `case` until the configured
    /// number of successes, retrying `prop_assume!` rejections and
    /// panicking on the first failure.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let cases = config.effective_cases();
        let mut rng = StdRng::seed_from_u64(seed_for(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejected}); last: {why}"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {}/{cases} \
                         (seed {}, set PROPTEST_SEED to reproduce): {msg}",
                        passed + 1,
                        seed_for(name),
                    );
                }
            }
        }
    }
}

/// Declare property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(a in strategy_a(), b in 0u64..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategies = ( $($strat,)* );
                $crate::runner::run(&__config, stringify!($name), |__rng| {
                    let ( $($arg,)* ) = {
                        let ( $(ref $arg,)* ) = __strategies;
                        ( $($crate::Strategy::generate($arg, __rng),)* )
                    };
                    #[allow(unreachable_code)]
                    (|| -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Assert inside a property test; failure fails the current case with
/// the generated inputs still in scope for the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal (both must impl `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __lhs = $lhs;
        let __rhs = $rhs;
        $crate::prop_assert!(
            __lhs == __rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __lhs,
            __rhs
        );
    }};
}

/// Assert two expressions differ (both must impl `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __lhs = $lhs;
        let __rhs = $rhs;
        $crate::prop_assert!(
            __lhs != __rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __lhs
        );
    }};
}

/// Discard the current case (retried without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(String::from(
                stringify!($cond),
            )));
        }
    };
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_executes_exactly_the_configured_cases() {
        let mut executed = 0u32;
        crate::runner::run(
            &ProptestConfig {
                cases: 37,
                max_global_rejects: 10,
            },
            "count_probe",
            |_rng| {
                executed += 1;
                Ok(())
            },
        );
        // PROPTEST_CASES can cap below 37 in CI, never raise above it.
        let expected = ProptestConfig {
            cases: 37,
            max_global_rejects: 10,
        }
        .effective_cases();
        assert_eq!(executed, expected);
        assert!(expected <= 37);
    }

    #[test]
    fn env_cap_lowers_but_never_raises() {
        // Note: relies on PROPTEST_CASES being unset in the unit-test
        // environment; effective == configured in that case.
        let cfg = ProptestConfig::with_cases(17);
        assert!(cfg.effective_cases() <= 17);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3u64..9, b in -1.5f64..1.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.5..1.5).contains(&b));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_honours_arms(x in prop_oneof![2 => Just(0.0f64), 1 => 10.0f64..11.0]) {
            prop_assert!(x == 0.0 || (10.0..11.0).contains(&x));
        }

        #[test]
        fn assume_retries(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_property_panics(_x in 0u64..2) {
            prop_assert!(false, "forced failure");
        }
    }
}
