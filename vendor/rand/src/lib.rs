//! Offline stand-in for the `rand` crate (0.9-series API surface).
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`
//!   and `fill_bytes`,
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   via SplitMix64 (the same construction the real `rand` documents
//!   for `seed_from_u64`).
//!
//! Determinism matters more than CSPRNG strength here: every experiment
//! binary and test seeds its generator explicitly so runs reproduce
//! bit-for-bit. Nothing in this workspace derives key material from
//! `StdRng` quality assumptions beyond statistical uniformity (the
//! Paillier layer does its own rejection sampling on top).

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// The `StandardUniform` distribution: "any value of T, uniformly".
pub struct StandardUniform;

/// A distribution that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<i128> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        <StandardUniform as Distribution<u128>>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for StandardUniform {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                Self::sample_inclusive(rng, low, high - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                if span == 0 {
                    // Full 128-bit span: any value is in range.
                    return <StandardUniform as Distribution<$t>>::sample(&StandardUniform, rng);
                }
                // Widening multiply maps a uniform 64-bit draw onto the
                // span with bias < 2^-64 per draw — far below anything a
                // test or experiment here can observe.
                let x = rng.next_u64() as u128;
                let v = if span > u64::MAX as u128 {
                    let hi = rng.next_u64() as u128;
                    ((hi << 64) | x) % span
                } else {
                    (x * span) >> 64
                };
                ((low as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*}
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit: $t = StandardUniform.sample(rng);
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let unit: $t = StandardUniform.sample(rng);
                low + (high - low) * unit
            }
        }
    )*}
}
impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from the standard-uniform distribution.
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fill a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 (matching the
    /// construction documented by the real `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_snapshot_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
