//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator — the workspace's stand-in for
/// `rand::rngs::StdRng`.
///
/// Not cryptographically secure (neither is the real `StdRng` a
/// requirement here): the protocols draw their security-relevant
/// randomness through rejection sampling in `bf-bigint`, and everything
/// else only needs reproducible statistical uniformity.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Snapshot the generator state. Together with [`StdRng::from_state`]
    /// this lets a checkpoint capture an RNG mid-stream and resume it
    /// exactly: `from_state(r.state())` continues the identical draw
    /// sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`StdRng::state`] snapshot.
    ///
    /// The snapshot must come from a live generator; an all-zero state
    /// (unreachable from any seeding path, which maps it to a fixed
    /// non-zero constant) is normalised the same way `from_seed` does.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            let mut seed = [0u8; 32];
            for (chunk, limb) in seed.chunks_exact_mut(8).zip(s) {
                chunk.copy_from_slice(&limb.to_le_bytes());
            }
            return <Self as SeedableRng>::from_seed(seed);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is the one fixed point of the generator.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        StdRng { s }
    }
}
