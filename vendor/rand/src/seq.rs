//! Sequence-related random operations (`SliceRandom`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Slice element type.
    type Item;

    /// Shuffle in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_in_bounds() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [5u8, 6, 7];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
